"""Parallel evaluation engine for CPU-bound EDA-tool invocations.

LLM-for-EDA loops are gated by tool-invocation throughput: pass@k sampling,
VRank self-consistency clustering and trojan-detection sweeps all score
many *independent* candidates.  :class:`ParallelEvaluator` fans those
evaluations out over a ``concurrent.futures`` pool while guaranteeing:

* **deterministic ordering** — results come back in submission order, so a
  parallel run assembles byte-identical statistics to the serial run;
* **process-pool default** for CPU-bound simulation (fork start method where
  available so worker state — e.g. hash randomization — matches the parent),
  with a thread fallback when tasks are not picklable or process spawning is
  unavailable;
* **per-task timeouts** — a stuck evaluation yields ``timeout_result``
  instead of wedging the whole sweep;
* a ``REPRO_JOBS`` environment knob so every flow and benchmark script can
  be parallelized without threading a parameter through each call site.

Job resolution order: explicit ``jobs`` argument > ``REPRO_JOBS`` env var >
serial (1).  ``jobs="auto"`` or any value < 0 means one worker per CPU.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import (Future, ProcessPoolExecutor,
                                ThreadPoolExecutor, TimeoutError as
                                FutureTimeout)
from typing import Any, Callable, Iterable, Sequence

from ..config import _warned_values as _warned_bad_jobs
from ..config import get_settings
from ..obs import get_metrics, get_tracer

JOBS_ENV = "REPRO_JOBS"

# Grace period for terminated workers to exit before they are SIGKILLed.
_REAP_GRACE_S = 5.0


def resolve_jobs(jobs: int | str | None = None) -> int:
    """Resolve a worker count from the argument or the environment.

    Delegates to :class:`repro.config.Settings`: an unparseable value
    degrades to serial (1) but emits a one-time ``RuntimeWarning`` naming
    the bad value and where it came from.
    """
    return get_settings().resolve_jobs(jobs)


class EvaluationTimeout(Exception):
    """A task exceeded the evaluator's per-task timeout."""


def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return None


class ParallelEvaluator:
    """Order-preserving map over a process (or thread) pool.

    ``mode`` is one of ``"auto"`` (process pool, thread fallback),
    ``"process"``, ``"thread"``, or ``"serial"``.  With one job the
    evaluator always degrades to a plain in-process loop, so the serial
    path stays byte-for-byte identical to the pre-parallel code.
    """

    def __init__(self, jobs: int | str | None = None, mode: str = "auto",
                 timeout: float | None = None):
        if mode not in ("auto", "process", "thread", "serial"):
            raise ValueError(f"unknown evaluator mode '{mode}'")
        self.jobs = resolve_jobs(jobs)
        self.mode = "serial" if self.jobs <= 1 else mode
        self.timeout = timeout

    # -- public -------------------------------------------------------------

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any],
            timeout_result: Callable[[Any], Any] | None = None,
            on_result: Callable[[int, Any, Any], None] | None = None) \
            -> list[Any]:
        """Apply ``fn`` to every item; results in submission order.

        On a per-task timeout, the slot receives ``timeout_result(item)``
        when provided, otherwise :class:`EvaluationTimeout` is raised.
        Worker exceptions propagate unchanged.

        ``on_result(index, item, result)`` is invoked in the caller's
        thread, in submission order, as each genuine result lands — the
        checkpoint hook sweep journaling rides on.  Timeout placeholders
        are *not* reported: a timeout is an execution accident, not a
        reproducible cell outcome, so it must never be journaled.
        """
        work = list(items)
        tracer = get_tracer()
        with tracer.span("exec.map", mode=self.mode, jobs=self.jobs,
                         tasks=len(work)) as sp:
            if self.mode == "serial" or len(work) <= 1:
                sp.set(worker_mode="serial")
                out = []
                for index, item in enumerate(work):
                    result = fn(item)
                    if on_result is not None:
                        on_result(index, item, result)
                    out.append(result)
                return out
            if self.mode in ("auto", "process"):
                try:
                    return self._pooled(self._process_executor(), fn, work,
                                        timeout_result, sp, "process",
                                        on_result)
                except (OSError, ValueError, TypeError, AttributeError,
                        ImportError) as exc:
                    if self.mode == "process":
                        raise
                    # Unpicklable closure / sandboxed platform: degrade to
                    # threads.
                    sp.set(fallback=str(exc)[:120])
                    return self._pooled(self._thread_executor(), fn, work,
                                        timeout_result, sp, "thread",
                                        on_result)
            return self._pooled(self._thread_executor(), fn, work,
                                timeout_result, sp, "thread", on_result)

    # -- internals ----------------------------------------------------------

    def _process_executor(self) -> ProcessPoolExecutor:
        ctx = _fork_context()
        if ctx is not None:
            return ProcessPoolExecutor(max_workers=self.jobs, mp_context=ctx)
        return ProcessPoolExecutor(max_workers=self.jobs)

    def _thread_executor(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(max_workers=self.jobs)

    def _pooled(self, executor, fn, work: Sequence[Any],
                timeout_result, span=None, worker_mode: str = "",
                on_result=None) -> list[Any]:
        tracer = get_tracer()
        observing = tracer.enabled
        latency = get_metrics().histogram("exec.task_latency_s") \
            if observing else None
        timeouts = 0
        t_submit = time.perf_counter()
        try:
            futures: list[Future] = [executor.submit(fn, item)
                                     for item in work]
            out: list[Any] = []
            for index, (item, future) in enumerate(zip(work, futures)):
                try:
                    result = future.result(timeout=self.timeout)
                    if on_result is not None:
                        on_result(index, item, result)
                    out.append(result)
                except FutureTimeout:
                    timeouts += 1
                    future.cancel()
                    if timeout_result is None:
                        raise EvaluationTimeout(
                            f"evaluation exceeded {self.timeout}s") from None
                    out.append(timeout_result(item))
                if latency is not None:
                    # Queue+run latency from fan-out to result availability.
                    latency.observe(time.perf_counter() - t_submit)
            return out
        finally:
            # A timed-out future cannot be cancelled once running and a
            # default shutdown blocks until the hung worker finishes, so a
            # stuck evaluation would wedge the whole sweep.  Shut down
            # without waiting and forcibly reap stuck process workers.
            self._shutdown(executor, force=timeouts > 0)
            if observing:
                metrics = get_metrics()
                metrics.counter("exec.tasks").add(len(work))
                if timeouts:
                    metrics.counter("exec.timeouts").add(timeouts)
                if span is not None:
                    span.set(worker_mode=worker_mode, timeouts=timeouts)

    @staticmethod
    def _shutdown(executor, force: bool) -> None:
        """Tear down a pool; ``force`` reaps workers instead of waiting."""
        if not force:
            executor.shutdown(wait=True)
            return
        # Snapshot the worker processes first: shutdown() clears
        # ``_processes`` even with ``wait=False``.
        processes = getattr(executor, "_processes", None)
        workers = list(processes.values()) if processes else []
        executor.shutdown(wait=False, cancel_futures=True)
        if not workers:
            # Thread pools cannot be force-killed; the cancelled futures
            # never start and the hung thread is abandoned to finish alone.
            return
        for proc in workers:
            proc.terminate()
        deadline = time.monotonic() + _REAP_GRACE_S
        for proc in workers:
            proc.join(max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()
                proc.join(1.0)


def parallel_map(fn: Callable[[Any], Any], items: Iterable[Any],
                 jobs: int | str | None = None, mode: str = "auto",
                 timeout: float | None = None,
                 timeout_result: Callable[[Any], Any] | None = None) -> list:
    """One-shot convenience wrapper around :class:`ParallelEvaluator`."""
    return ParallelEvaluator(jobs, mode=mode, timeout=timeout).map(
        fn, items, timeout_result=timeout_result)
