"""Picklable task functions for the process-pool evaluators.

Process pools require module-level callables; these wrap the repo's pure
scoring primitives so flows can fan them out.  Imports happen inside the
functions to keep ``repro.exec`` free of import cycles (``repro.bench``
imports this package).
"""

from __future__ import annotations

from typing import Any


def evaluate_candidate_task(payload: tuple) -> Any:
    """``(problem, candidate_source, max_time) -> TestbenchResult``."""
    problem, source, max_time = payload
    from ..bench.harness import evaluate_candidate
    return evaluate_candidate(problem, source, max_time=max_time)


def run_testbench_task(payload: tuple) -> Any:
    """``(source, top, max_time, seed, tb_source) -> TestbenchResult``."""
    source, top, max_time, seed, tb_source = payload
    from ..hdl.testbench import run_testbench
    return run_testbench(source, top, max_time=max_time, seed=seed,
                         tb_source=tb_source)


def exercise_module_task(payload: tuple) -> Any:
    """``(source, top, vectors, clk, reset) -> signatures | None``."""
    source, top, vectors, clk, reset = payload
    from ..hdl.testbench import exercise_module
    return exercise_module(source, top, vectors, clk=clk, reset=reset)


def timed_out_testbench(_payload: tuple) -> Any:
    """Timeout placeholder scored as a broken candidate."""
    from ..hdl.testbench import TestbenchResult
    return TestbenchResult(compiled=True,
                           runtime_error="evaluation timed out")


def guided_debug_task(payload: tuple) -> Any:
    """``(problem, model, use_crosscheck, max_iterations, temperature,
    seed) -> GuidedDebugResult`` — one cell of a guided-debugging sweep."""
    problem, model, use_crosscheck, max_iterations, temperature, seed = payload
    from ..flows.crosscheck import guided_debug
    from ..service import resolve_client
    llm = resolve_client(model, seed=seed)
    return guided_debug(problem, llm, use_crosscheck=use_crosscheck,
                        max_iterations=max_iterations,
                        temperature=temperature, seed=seed)


def autochip_budget_task(payload: tuple) -> Any:
    """``(problem, model, k, depth, temperature, seed) -> AutoChipResult`` —
    one cell of a ``compare_budgets`` grid (fresh client per cell: a
    ``SimulatedLLM`` generation depends only on its key, and result token
    counts are per-run deltas, so per-cell clients match the shared-client
    serial loop)."""
    problem, model, k, depth, temperature, seed = payload
    from ..flows.autochip import run_autochip
    return run_autochip(problem, model, k=k, depth=depth,
                        temperature=temperature, seed=seed)


def vrank_cell_task(payload: tuple) -> Any:
    """``(problem, model, n_candidates, temperature, seed) -> VRankResult``
    — one cell of a VRank sweep."""
    problem, model, n_candidates, temperature, seed = payload
    from ..flows.vrank import vrank
    return vrank(problem, model, n_candidates, temperature=temperature,
                 seed=seed)


def agent_run_task(payload: tuple) -> Any:
    """``(problem, model, enable_feedback, seed) -> AgentRunReport`` — one
    cell of an agent sweep."""
    problem, model, enable_feedback, seed = payload
    from ..core.agent import AgentConfig, EdaAgent
    agent = EdaAgent(AgentConfig(model=model,
                                 enable_feedback=enable_feedback),
                     seed=seed)
    return agent.run(problem)


def planner_task_cell(payload: tuple) -> Any:
    """``(task_id, model, seed, max_steps) -> PlannerRunReport`` — one cell
    of a planner task-suite pass@k grid."""
    task_id, model, seed, max_steps = payload
    from ..tasks import run_task
    return run_task(task_id, model, seed=seed, max_steps=max_steps)


def structured_flow_task(payload: tuple) -> Any:
    """``(problem, model, seed) -> StructuredFlowResult`` — one cell of a
    structured-feedback sweep."""
    problem, model, seed = payload
    from ..flows.structured import StructuredFeedbackFlow
    from ..service import resolve_client
    flow = StructuredFeedbackFlow(resolve_client(model, seed=seed))
    return flow.run(problem, seed=seed)


def chipchat_task(payload: tuple) -> Any:
    """``(problem, model, seed) -> ChipChatResult`` — one Chip-Chat block."""
    problem, model, seed = payload
    from ..flows.chipchat import ChipChatSession
    from ..service import resolve_client
    return ChipChatSession(resolve_client(model, seed=seed)).run(problem)


def hierarchical_task(payload: tuple) -> Any:
    """``(problem, model, seed) -> HierarchicalResult`` — one cell of a
    hierarchical-vs-direct sweep."""
    problem, model, seed = payload
    from ..flows.hierarchical import run_hierarchical
    return run_hierarchical(problem, model, seed=seed)


def assertion_quality_task(payload: tuple) -> Any:
    """``(problem, model, seed) -> AssertionReport`` — one assertion-quality
    cell."""
    problem, model, seed = payload
    from ..flows.assertgen import assertion_quality
    return assertion_quality(problem, model, seed=seed)


def testbench_quality_task(payload: tuple) -> Any:
    """``(problem, model, self_correct, seed) -> TbQualityReport`` — one
    generated-testbench quality cell."""
    problem, model, self_correct, seed = payload
    from ..flows.autobench import testbench_quality
    return testbench_quality(problem, model, seed=seed,
                             self_correct=self_correct)


def detect_trojan_task(payload: tuple) -> Any:
    """``(problem, seed, cosim_vectors) -> dict[str, bool] | None``.

    Runs the full detector hierarchy for one compromised design; ``None``
    when the trojan insertion pattern does not apply to the problem.
    """
    problem, seed, cosim_vectors = payload
    from ..config import get_settings
    from ..flows.security import (detect_with_cec, detect_with_critic,
                                  detect_with_random_cosim,
                                  detect_with_testbench, insert_trojan)
    design = insert_trojan(problem, seed=seed)
    if design is None:
        return None
    cell = {
        "testbench": detect_with_testbench(problem, design).detected,
        "random_cosim": detect_with_random_cosim(
            problem, design, vectors=cosim_vectors, seed=seed).detected,
        "exhaustive_cec": detect_with_cec(problem, design).detected,
    }
    # Workers inherit REPRO_CRITIC (fork), so the gate matches the parent:
    # the default-config cell dict stays golden-identical.
    if get_settings().critic_enabled:
        cell["critic"] = detect_with_critic(problem, design).detected
    return cell
