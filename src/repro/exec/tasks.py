"""Picklable task functions for the process-pool evaluators.

Process pools require module-level callables; these wrap the repo's pure
scoring primitives so flows can fan them out.  Imports happen inside the
functions to keep ``repro.exec`` free of import cycles (``repro.bench``
imports this package).
"""

from __future__ import annotations

from typing import Any


def evaluate_candidate_task(payload: tuple) -> Any:
    """``(problem, candidate_source, max_time) -> TestbenchResult``."""
    problem, source, max_time = payload
    from ..bench.harness import evaluate_candidate
    return evaluate_candidate(problem, source, max_time=max_time)


def run_testbench_task(payload: tuple) -> Any:
    """``(source, top, max_time, seed, tb_source) -> TestbenchResult``."""
    source, top, max_time, seed, tb_source = payload
    from ..hdl.testbench import run_testbench
    return run_testbench(source, top, max_time=max_time, seed=seed,
                         tb_source=tb_source)


def exercise_module_task(payload: tuple) -> Any:
    """``(source, top, vectors, clk, reset) -> signatures | None``."""
    source, top, vectors, clk, reset = payload
    from ..hdl.testbench import exercise_module
    return exercise_module(source, top, vectors, clk=clk, reset=reset)


def timed_out_testbench(_payload: tuple) -> Any:
    """Timeout placeholder scored as a broken candidate."""
    from ..hdl.testbench import TestbenchResult
    return TestbenchResult(compiled=True,
                           runtime_error="evaluation timed out")


def guided_debug_task(payload: tuple) -> Any:
    """``(problem, model, use_crosscheck, max_iterations, temperature,
    seed) -> GuidedDebugResult`` — one cell of a guided-debugging sweep."""
    problem, model, use_crosscheck, max_iterations, temperature, seed = payload
    from ..flows.crosscheck import guided_debug
    from ..llm.model import SimulatedLLM
    llm = model if isinstance(model, SimulatedLLM) \
        else SimulatedLLM(model, seed=seed)
    return guided_debug(problem, llm, use_crosscheck=use_crosscheck,
                        max_iterations=max_iterations,
                        temperature=temperature, seed=seed)


def detect_trojan_task(payload: tuple) -> Any:
    """``(problem, seed, cosim_vectors) -> dict[str, bool] | None``.

    Runs the full detector hierarchy for one compromised design; ``None``
    when the trojan insertion pattern does not apply to the problem.
    """
    problem, seed, cosim_vectors = payload
    from ..flows.security import (detect_with_cec, detect_with_random_cosim,
                                  detect_with_testbench, insert_trojan)
    design = insert_trojan(problem, seed=seed)
    if design is None:
        return None
    return {
        "testbench": detect_with_testbench(problem, design).detected,
        "random_cosim": detect_with_random_cosim(
            problem, design, vectors=cosim_vectors, seed=seed).detected,
        "exhaustive_cec": detect_with_cec(problem, design).detected,
    }
