"""``repro.exec`` — parallel evaluation engine.

Fans independent, CPU-bound tool invocations (testbench scoring, stimulus
co-simulation, trojan detection) out over a ``concurrent.futures`` pool
with deterministic result ordering, per-task timeouts, and a ``REPRO_JOBS``
environment knob.  See :mod:`repro.exec.parallel`.
"""

from .parallel import (EvaluationTimeout, JOBS_ENV, ParallelEvaluator,
                       parallel_map, resolve_jobs)
from .scheduler import SweepScheduler, sweep_map
from .tasks import (agent_run_task, assertion_quality_task,
                    autochip_budget_task, chipchat_task, detect_trojan_task,
                    evaluate_candidate_task, exercise_module_task,
                    guided_debug_task, hierarchical_task, planner_task_cell,
                    run_testbench_task, structured_flow_task,
                    testbench_quality_task, timed_out_testbench,
                    vrank_cell_task)

__all__ = [
    "EvaluationTimeout", "JOBS_ENV", "ParallelEvaluator", "SweepScheduler",
    "agent_run_task", "assertion_quality_task", "autochip_budget_task",
    "chipchat_task", "detect_trojan_task", "evaluate_candidate_task",
    "exercise_module_task", "guided_debug_task", "hierarchical_task",
    "parallel_map", "planner_task_cell", "resolve_jobs",
    "run_testbench_task", "structured_flow_task", "sweep_map",
    "testbench_quality_task", "timed_out_testbench", "vrank_cell_task",
]
