"""Shared command-line conventions for the ``repro`` CLIs.

Every entry point (``python -m repro.fuzz`` / ``repro.flows`` /
``repro.loadgen`` / ``repro.obs.report``) follows the same contract:

* bad input exits with status **2** and a one-line message on stderr —
  never a raw traceback;
* ``--seed`` means the same thing everywhere (the campaign/sweep seed);
* ``--store [DIR]`` enables the persistent artifact store for the run
  (equivalent to ``REPRO_STORE=1`` plus ``REPRO_STORE_DIR=DIR``), and
  ``--resume`` replays a prior campaign's journaled cells from it.

This module factors those conventions so the CLIs cannot drift apart;
``tests/test_cli_errors.py`` pins the contract per entry point.
"""

from __future__ import annotations

import argparse
import os
import sys

from .config import ENV_STORE, ENV_STORE_DIR, get_settings


def build_parser(prog: str, description: str) -> argparse.ArgumentParser:
    """An argparse parser with the uniform error contract (message to
    stderr, exit status 2 — argparse's native behaviour, standardized
    here as the one construction point)."""
    return argparse.ArgumentParser(prog=prog, description=description)


def add_seed_argument(parser: argparse.ArgumentParser,
                      default: int = 0) -> None:
    parser.add_argument("--seed", type=int, default=default,
                        help=f"campaign/sweep seed (default: {default})")


def add_store_arguments(parser: argparse.ArgumentParser,
                        resume: bool = True) -> None:
    """Add ``--store [DIR]`` (and ``--resume``) to a campaign CLI."""
    parser.add_argument(
        "--store", nargs="?", const="", default=None, metavar="DIR",
        help="persist cache artifacts and campaign checkpoints to the "
             "content-addressed store at DIR (default: REPRO_STORE_DIR "
             "or .repro-store); equivalent to REPRO_STORE=1")
    if resume:
        parser.add_argument(
            "--resume", action="store_true",
            help="replay cells journaled by a prior interrupted run of "
                 "the same campaign from the store (requires --store or "
                 "REPRO_STORE=1)")


def activate_store(args: argparse.Namespace):
    """Resolve the ``--store``/``--resume`` flags into a live store.

    Returns the process-wide :class:`repro.store.DiskStore` (or ``None``
    when persistence stays off).  Exits 2 — via :func:`fail` semantics —
    when ``--resume`` is requested without an active store.
    """
    from .store import get_default_store, reset_default_store
    store_arg = getattr(args, "store", None)
    if store_arg is not None:
        os.environ[ENV_STORE] = "1"
        if store_arg:
            os.environ[ENV_STORE_DIR] = store_arg
        reset_default_store()
    store = get_default_store()
    if getattr(args, "resume", False) and store is None:
        raise CliError("--resume requires an active artifact store "
                       "(pass --store [DIR] or set REPRO_STORE=1)")
    if store_arg is not None and store is not None:
        probe = os.path.join(store.root, ".writable")
        try:
            with open(probe, "w", encoding="utf-8"):
                pass
            os.unlink(probe)
        except OSError as exc:
            raise CliError(
                f"store directory '{store.root}' is not writable: {exc}")
    return store


class CliError(Exception):
    """Bad input detected past argparse; carries the user-facing message."""


def fail(message: str) -> int:
    """Print ``message`` to stderr and return the uniform bad-input code."""
    print(message, file=sys.stderr)
    return 2


def run(main_body, args: argparse.Namespace) -> int:
    """Execute a CLI body, mapping :class:`CliError` to the exit contract."""
    try:
        return main_body(args)
    except CliError as exc:
        return fail(str(exc))


def settings_summary() -> str:
    """One-line settings echo some CLIs print under ``--verbose``."""
    return " ".join(f"{k}={v}" for k, v in get_settings().snapshot().items())
