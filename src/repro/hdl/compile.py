"""Content-addressed compile front-end: ``parse -> elaborate`` with caching.

Every flow in the repo bottoms out in "compile this candidate against that
testbench and simulate" — and profiling shows the front-end (lexing and
parsing, ~3ms of an ~11ms :func:`repro.hdl.run_testbench` call) is repeated
for the *same* sources thousands of times per suite: the testbench is fixed
per problem, and a seeded :class:`~repro.llm.model.SimulatedLLM` at low
temperature emits duplicate candidates.  This module splits compilation into
explicit, separately-cacheable stages:

* :meth:`CompileCache.parse` — source text -> :class:`~repro.hdl.ast.SourceFile`,
  keyed by content hash,
* :meth:`CompileCache.compile` — one *or several* compilation units linked
  (module-dict merge, later units win, mirroring concatenated parsing) and
  elaborated into a :class:`~repro.hdl.elaborate.Design`, keyed by the tuple
  of unit hashes plus the top module, and
* a result memo used by :func:`repro.hdl.run_testbench` — a testbench run is
  a pure function of ``(sources, top, max_time, seed)``, so repeated
  identical runs are served from cache.

Poison safety: cache entries are stored as pickled blobs and every lookup —
hit *or* cold — materializes fresh objects from the blob, so mutating a
returned ``CompiledDesign`` (or the AST reachable from it) cannot corrupt
later hits.  ``pickle.loads`` of a design is ~12x cheaper than re-parsing.

Each layer is a named region of one shared :class:`repro.store.CacheBackend`
— a bounded in-memory LRU front by default, tiered over the on-disk
content-addressed :class:`repro.store.DiskStore` when ``REPRO_STORE=1``, so
a second process starts warm from the first one's artifacts.  Capacities
can be tuned with ``REPRO_COMPILE_CACHE`` (designs/parses/programs) and
``REPRO_RESULT_CACHE`` (testbench results), and the whole layer disabled
with ``REPRO_HDL_CACHE=0``.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from dataclasses import dataclass
from typing import Sequence

from . import ast as A
from ..obs import get_tracer
from ..store import (CacheStats, MemoryBackend, TieredBackend, content_key,
                     get_default_store)
from ..store import LruBlobCache as _LruBlobCache  # noqa: F401 (re-export)
from .elaborate import Design, elaborate
from .parser import parse


def source_key(source: str) -> str:
    """Stable content hash used as the cache key for one compilation unit."""
    return hashlib.sha256(source.encode("utf-8", "replace")).hexdigest()


# Process-wide per-layer counters that survive cache replacement.  Bench
# harnesses (and some tests) build private ``CompileCache`` instances or
# reset the default cache mid-run, which used to zero the per-instance
# stats before the telemetry snapshot was taken — every ``hdl.cache.*``
# gauge read 0.0 despite thousands of lookups.  The cumulative registry
# accumulates across *all* instances and is what ``flush_metrics`` merges
# into snapshots (as ``hdl.cache_cumulative.*``).
_CUMULATIVE: dict[str, CacheStats] = {}
_CUM_LOCK = threading.Lock()


def _cum(layer: str) -> CacheStats:
    with _CUM_LOCK:
        stats = _CUMULATIVE.get(layer)
        if stats is None:
            stats = _CUMULATIVE[layer] = CacheStats()
        return stats


def cumulative_gauges(prefix: str = "hdl.cache_cumulative") -> dict[str, float]:
    """Flat gauge view of the process-wide cache counters."""
    with _CUM_LOCK:
        layers = sorted(_CUMULATIVE)
    return {f"{prefix}.{layer}.{key}": round(float(value), 6)
            for layer in layers
            for key, value in _cum(layer).as_dict().items()}


class _LayerView:
    """One compile-cache layer as a named-region view over the shared
    :class:`~repro.store.CacheBackend`.

    Keys stay the structured tuples the call sites use; the view hashes
    them to the backend's string keyspace with
    :func:`~repro.store.content_key` (parse keys are already digests).
    Stats, capacity and size report the in-memory tier — in-process cache
    effectiveness — while disk-tier hits/misses/corruption accumulate in
    the :class:`~repro.store.DiskStore`'s own ``store.*`` counters.
    """

    __slots__ = ("_backend", "_memory", "name")

    def __init__(self, backend: TieredBackend | MemoryBackend, name: str):
        self._backend = backend
        self._memory = backend.memory \
            if isinstance(backend, TieredBackend) else backend
        self.name = name

    @staticmethod
    def _skey(key: object) -> str:
        return key if isinstance(key, str) else content_key(key)

    @property
    def stats(self) -> CacheStats:
        return self._memory.region(self.name).stats

    @property
    def capacity(self) -> int:
        return self._memory.region(self.name).capacity

    def __len__(self) -> int:
        return len(self._memory.region(self.name))

    def get(self, key: object) -> bytes | None:
        return self._backend.get(self.name, self._skey(key))

    def put(self, key: object, blob: bytes) -> None:
        self._backend.put(self.name, self._skey(key), blob)

    def record_live_hit(self) -> None:
        """Count a hit served from a live (unpickled) side table."""
        lru = self._memory.region(self.name)
        lru.stats.hits += 1
        lru._cum.hits += 1

    def clear(self) -> None:
        """Drop the in-memory tier; persisted artifacts survive."""
        self._memory.region(self.name).clear()


@dataclass(frozen=True)
class CompiledSource:
    """One parsed compilation unit.  ``source_file`` is caller-owned."""

    key: str
    source_file: A.SourceFile


@dataclass
class CompiledDesign:
    """An elaborated design plus its cache identity.

    ``design`` is a fresh materialization — callers may mutate it freely
    without affecting later cache hits.
    """

    key: tuple
    top: str
    design: Design
    from_cache: bool = False
    units: tuple[str, ...] = ()


def cache_enabled() -> bool:
    from ..config import get_settings
    return get_settings().hdl_cache_enabled


class CompileCache:
    """Four-layer compile cache: parse, link+elaborate, programs, results.

    The layers are views over one shared :class:`~repro.store.CacheBackend`
    — memory-only by default, tiered over the process-wide
    :class:`~repro.store.DiskStore` when ``REPRO_STORE=1`` (resolved live,
    so flipping the knob mid-process takes effect on the next lookup).  A
    custom ``backend`` (any :class:`~repro.store.TieredBackend` or
    :class:`~repro.store.MemoryBackend`) overrides both.
    """

    def __init__(self, parse_capacity: int | None = None,
                 design_capacity: int | None = None,
                 result_capacity: int | None = None,
                 backend: TieredBackend | MemoryBackend | None = None):
        from ..config import get_settings
        settings = get_settings()
        cap = settings.compile_cache_capacity
        if backend is None:
            capacities = {
                "parse": parse_capacity or cap,
                "design": design_capacity or cap,
                "program": design_capacity or cap,
                "result": result_capacity or settings.result_cache_capacity,
            }
            backend = TieredBackend(
                MemoryBackend(capacities,
                              cumulative={r: _cum(r) for r in capacities}),
                disk=get_default_store)
        self._backend = backend
        self._parses = _LayerView(backend, "parse")
        self._designs = _LayerView(backend, "design")
        self._results = _LayerView(backend, "result")
        self._programs = _LayerView(backend, "program")
        # Live ASTs for internal linking only (never handed to callers):
        # avoids an unpickle on the design-miss path.  Bounded alongside
        # the parse LRU by periodic pruning.
        self._live: dict[str, A.SourceFile] = {}
        # Live compiled-program entries: keeps the exec'd namespace warm
        # (re-exec'ing generated source is the expensive half of a program
        # unpickle).  Bounded the same way as ``_live``.
        self._live_programs: dict[tuple, tuple] = {}
        self._lock = threading.Lock()

    # -- parse layer --------------------------------------------------------

    def _parse_shared(self, source: str) -> tuple[str, A.SourceFile]:
        """Parse with caching; the returned AST is shared and must not be
        mutated (internal use only)."""
        key = source_key(source)
        with self._lock:
            live = self._live.get(key)
        if live is not None:
            self._parses.record_live_hit()
            return key, live
        blob = self._parses.get(key)
        if blob is not None:
            sf = pickle.loads(blob)
        else:
            sf = parse(source)
            self._parses.put(key, pickle.dumps(sf, pickle.HIGHEST_PROTOCOL))
        with self._lock:
            if len(self._live) >= self._parses.capacity:
                self._live.clear()
            self._live[key] = sf
        return key, sf

    def parse(self, source: str) -> CompiledSource:
        """Parse one unit; the returned AST is a private copy."""
        key, _ = self._parse_shared(source)
        blob = self._parses.get(key)
        assert blob is not None
        return CompiledSource(key, pickle.loads(blob))

    # -- link + elaborate layer --------------------------------------------

    def compile(self, sources: str | Sequence[str], top: str) -> CompiledDesign:
        """Compile one or more units and elaborate ``top``.

        Multiple units are linked by merging their module tables in order
        (later definitions win), which is exactly what parsing the
        concatenated text would produce — so a DUT and a testbench can be
        compiled separately and cached independently.
        """
        with get_tracer().span("hdl.compile", top=top) as sp:
            compiled = self._compile_impl(sources, top)
            sp.set(cached=compiled.from_cache, units=len(compiled.units))
            return compiled

    def _compile_impl(self, sources: str | Sequence[str],
                      top: str) -> CompiledDesign:
        unit_list = [sources] if isinstance(sources, str) else list(sources)
        keys = tuple(source_key(s) for s in unit_list)
        dkey = (keys, top)
        blob = self._designs.get(dkey)
        if blob is not None:
            return CompiledDesign(dkey, top, pickle.loads(blob),
                                  from_cache=True, units=keys)
        merged = A.SourceFile()
        for unit in unit_list:
            _, sf = self._parse_shared(unit)
            merged.modules.update(sf.modules)
        design = elaborate(merged, top)
        blob = pickle.dumps(design, pickle.HIGHEST_PROTOCOL)
        self._designs.put(dkey, blob)
        # Materialize from the blob even on the cold path: the freshly
        # elaborated design references the shared parse-cache AST, and the
        # caller is allowed to mutate what we hand out.
        return CompiledDesign(dkey, top, pickle.loads(blob),
                              from_cache=False, units=keys)

    # -- compiled-program layer ---------------------------------------------

    def get_program(self, design_key: tuple) -> tuple | None:
        """Cached compiled-engine entry for a design key.

        Returns ``("ok", CompiledProgram)``, ``("ineligible", reason)`` —
        negative results are cached too, so an unsupported design is
        analysed once — or ``None`` on a miss.
        """
        with self._lock:
            live = self._live_programs.get(design_key)
        if live is not None:
            self._programs.record_live_hit()
            return live
        blob = self._programs.get(design_key)
        if blob is None:
            return None
        entry = pickle.loads(blob)
        with self._lock:
            if len(self._live_programs) >= self._programs.capacity:
                self._live_programs.clear()
            self._live_programs[design_key] = entry
        return entry

    def put_program(self, design_key: tuple, entry: tuple) -> None:
        """Store a ``("ok", program)`` / ``("ineligible", reason)`` entry."""
        self._programs.put(
            design_key, pickle.dumps(entry, pickle.HIGHEST_PROTOCOL))
        with self._lock:
            if len(self._live_programs) >= self._programs.capacity:
                self._live_programs.clear()
            self._live_programs[design_key] = entry

    # -- result memo --------------------------------------------------------

    def get_result(self, key: tuple) -> object | None:
        blob = self._results.get(key)
        return pickle.loads(blob) if blob is not None else None

    def put_result(self, key: tuple, result: object) -> None:
        self._results.put(key, pickle.dumps(result, pickle.HIGHEST_PROTOCOL))

    # -- management ---------------------------------------------------------

    def stats(self) -> dict[str, CacheStats]:
        return {"parse": self._parses.stats, "design": self._designs.stats,
                "result": self._results.stats,
                "program": self._programs.stats}

    def stats_dict(self) -> dict[str, dict[str, float]]:
        layers = {"parse": self._parses, "design": self._designs,
                  "result": self._results, "program": self._programs}
        return {name: {**lru.stats.as_dict(), "size": len(lru)}
                for name, lru in layers.items()}

    def metrics_gauges(self, prefix: str = "hdl.cache") -> dict[str, float]:
        """Flat ``prefix.layer.stat`` gauge view of :meth:`stats` for
        telemetry snapshots (see :func:`repro.obs.flush_metrics`)."""
        return {f"{prefix}.{layer}.{key}": round(float(value), 6)
                for layer, stats in self.stats_dict().items()
                for key, value in stats.items()}

    def clear(self) -> None:
        self._parses.clear()
        self._designs.clear()
        self._results.clear()
        self._programs.clear()
        with self._lock:
            self._live.clear()
            self._live_programs.clear()


_default_cache = CompileCache()


def get_default_cache() -> CompileCache:
    return _default_cache


def set_default_cache(cache: CompileCache) -> CompileCache:
    global _default_cache
    _default_cache = cache
    return cache


def compile_design(sources: str | Sequence[str], top: str,
                   cache: CompileCache | None = None) -> CompiledDesign:
    """Compile (and link) ``sources``; elaborate ``top``.  Cached by content.

    With ``REPRO_HDL_CACHE=0`` this degrades to a plain parse+elaborate.
    """
    if not cache_enabled():
        unit_list = [sources] if isinstance(sources, str) else list(sources)
        merged = A.SourceFile()
        for unit in unit_list:
            merged.modules.update(parse(unit).modules)
        design = elaborate(merged, top)
        return CompiledDesign((tuple(source_key(s) for s in unit_list), top),
                              top, design)
    return (cache or _default_cache).compile(sources, top)
