"""``repro.hdl`` — a from-scratch mini-Verilog toolchain.

Substitutes for Icarus Verilog in the paper's flows: lexing, parsing,
elaboration, event-driven four-state simulation, testbench scoring, direct
port-level stimulus, and lint diagnostics.
"""

from .ast import Module, SourceFile
from .errors import (ElaborationError, HdlError, LexError, LintWarning,
                     ParseError, SimulationError)
from .elaborate import Design, elaborate
from .lexer import tokenize
from .lint import lint_module, lint_source
from .parser import parse, parse_module
from .simulator import Simulator
from .testbench import (StimulusRunner, TestbenchResult, exercise_module,
                        run_testbench)
from .values import Logic, concat_all

__all__ = [
    "Design", "ElaborationError", "HdlError", "LexError", "LintWarning",
    "Logic", "Module", "ParseError", "SimulationError", "Simulator",
    "SourceFile", "StimulusRunner", "TestbenchResult", "concat_all",
    "elaborate", "exercise_module", "lint_module", "lint_source", "parse",
    "parse_module", "run_testbench", "tokenize",
]
