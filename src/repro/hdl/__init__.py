"""``repro.hdl`` — a from-scratch mini-Verilog toolchain.

Substitutes for Icarus Verilog in the paper's flows: lexing, parsing,
elaboration, event-driven four-state simulation, testbench scoring, direct
port-level stimulus, and lint diagnostics.
"""

from .ast import Module, SourceFile
from .compile import (CacheStats, CompileCache, CompiledDesign,
                      CompiledSource, compile_design, get_default_cache,
                      set_default_cache, source_key)
from .compiled import (CompiledProgram, CompiledSim, UnsupportedDesign,
                       XBail, compile_program)
from .errors import (ElaborationError, HdlError, LexError, LintWarning,
                     ParseError, SimulationError)
from .elaborate import Design, elaborate
from .lexer import tokenize
from .lint import lint_module, lint_source
from .parser import parse, parse_module
from .simulator import Simulator
from .testbench import (StimulusRunner, TestbenchResult, exercise_module,
                        run_testbench)
from .unparse import strip_locations, unparse, unparse_module
from .values import Logic, concat_all

__all__ = [
    "CacheStats", "CompileCache", "CompiledDesign", "CompiledProgram",
    "CompiledSim", "CompiledSource", "Design", "ElaborationError",
    "HdlError", "LexError", "LintWarning", "Logic", "Module", "ParseError",
    "SimulationError", "Simulator", "SourceFile", "StimulusRunner",
    "TestbenchResult", "UnsupportedDesign", "XBail", "compile_design",
    "compile_program", "concat_all", "elaborate", "exercise_module",
    "get_default_cache", "lint_module", "lint_source", "parse",
    "parse_module", "run_testbench", "set_default_cache", "source_key",
    "strip_locations", "tokenize", "unparse", "unparse_module",
]
