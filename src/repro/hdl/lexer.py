"""Tokenizer for the mini-Verilog subset."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from .errors import LexError, SourceLocation

KEYWORDS = {
    "module", "endmodule", "input", "output", "inout", "wire", "reg",
    "assign", "always", "initial", "begin", "end", "if", "else", "case",
    "casez", "endcase", "default", "posedge", "negedge", "or", "for",
    "integer", "parameter", "localparam", "function", "endfunction",
    "signed", "repeat", "while", "genvar", "generate", "endgenerate",
}

# System tasks the simulator understands.
SYSTEM_TASKS = {
    "$display", "$write", "$finish", "$stop", "$time", "$error",
    "$monitor", "$random", "$signed", "$unsigned",
}


class TokKind(Enum):
    IDENT = auto()
    KEYWORD = auto()
    NUMBER = auto()       # plain decimal integer
    SIZED_NUMBER = auto() # e.g. 8'hff — value is (width, value, xmask)
    STRING = auto()
    OP = auto()
    SYSTASK = auto()
    EOF = auto()


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    loc: SourceLocation
    # For SIZED_NUMBER: (width, value, xmask); for NUMBER: int value.
    value: object = None

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r})"


_MULTI_OPS = [
    "<<<", ">>>", "===", "!==",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "**",
]
_SINGLE_OPS = "+-*/%&|^~!<>=?:(),;.[]{}#@"


def _parse_based_digits(digits: str, base: int, width: int, loc: SourceLocation) -> tuple[int, int]:
    """Return (value, xmask) for a based literal's digit string."""
    value = 0
    xmask = 0
    bits_per = {2: 1, 8: 3, 16: 4}.get(base)
    digits = digits.replace("_", "")
    if base == 10:
        if "x" in digits.lower() or "z" in digits.lower():
            if len(digits) != 1:
                raise LexError(f"bad decimal literal digits '{digits}'", loc)
            return 0, (1 << width) - 1
        return int(digits, 10), 0
    for ch in digits:
        value <<= bits_per
        xmask <<= bits_per
        cl = ch.lower()
        if cl in "xz?":
            xmask |= (1 << bits_per) - 1
        else:
            try:
                value |= int(ch, base)
            except ValueError:
                raise LexError(f"invalid digit '{ch}' for base {base}", loc) from None
    return value, xmask


class Lexer:
    """Converts mini-Verilog source text into a token stream."""

    def __init__(self, source: str):
        self.src = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def _loc(self) -> SourceLocation:
        return SourceLocation(self.line, self.col)

    def _peek(self, ahead: int = 0) -> str:
        # Returns NUL at EOF: it fails every membership test ("" would
        # pathologically satisfy `x in "abc"` and loop the scanners forever).
        i = self.pos + ahead
        return self.src[i] if i < len(self.src) else "\x00"

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.src):
                if self.src[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    def _skip_trivia(self) -> None:
        while self.pos < len(self.src):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.src) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._loc()
                self._advance(2)
                while self.pos < len(self.src) and not (self._peek() == "*" and self._peek(1) == "/"):
                    self._advance()
                if self.pos >= len(self.src):
                    raise LexError("unterminated block comment", start)
                self._advance(2)
            elif ch == "`":
                # Compiler directives (`timescale etc.) are skipped to end of line.
                while self.pos < len(self.src) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def tokens(self) -> list[Token]:
        out: list[Token] = []
        while True:
            tok = self.next_token()
            out.append(tok)
            if tok.kind is TokKind.EOF:
                return out

    def next_token(self) -> Token:
        self._skip_trivia()
        loc = self._loc()
        if self.pos >= len(self.src):
            return Token(TokKind.EOF, "", loc)
        ch = self._peek()

        if ch == '"':
            return self._string(loc)
        if ch.isdigit() or (ch == "'" and self._peek(1).lower() in "bdoh"):
            return self._number(loc)
        if ch.isalpha() or ch == "_":
            return self._ident(loc)
        if ch == "$":
            return self._systask(loc)
        for op in _MULTI_OPS:
            if self.src.startswith(op, self.pos):
                self._advance(len(op))
                return Token(TokKind.OP, op, loc)
        if ch in _SINGLE_OPS:
            self._advance()
            return Token(TokKind.OP, ch, loc)
        raise LexError(f"unexpected character '{ch}'", loc)

    def _string(self, loc: SourceLocation) -> Token:
        self._advance()
        chars: list[str] = []
        while self.pos < len(self.src) and self._peek() != '"':
            ch = self._peek()
            if ch == "\\":
                self._advance()
                esc = self._peek()
                chars.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc, esc))
                self._advance()
            else:
                chars.append(ch)
                self._advance()
        if self.pos >= len(self.src):
            raise LexError("unterminated string literal", loc)
        self._advance()
        return Token(TokKind.STRING, "".join(chars), loc, value="".join(chars))

    def _number(self, loc: SourceLocation) -> Token:
        start = self.pos
        # Optional size prefix.
        while self._peek().isdigit() or self._peek() == "_":
            self._advance()
        if self._peek() == "'":
            size_text = self.src[start:self.pos].replace("_", "")
            width = int(size_text) if size_text else 32
            if width <= 0:
                raise LexError(f"literal width must be positive, got {width}",
                               loc)
            self._advance()
            base_ch = self._peek().lower()
            if base_ch == "s":  # signed base like 'sd — treat as unsigned
                self._advance()
                base_ch = self._peek().lower()
            base = {"b": 2, "o": 8, "d": 10, "h": 16}.get(base_ch)
            if base is None:
                raise LexError(f"invalid number base '{base_ch}'", loc)
            self._advance()
            dstart = self.pos
            while self._peek().isalnum() or self._peek() in "_xXzZ?":
                self._advance()
            digits = self.src[dstart:self.pos]
            if not digits:
                raise LexError("missing digits in sized literal", loc)
            value, xmask = _parse_based_digits(digits, base, width, loc)
            mask = (1 << width) - 1
            return Token(TokKind.SIZED_NUMBER, self.src[start:self.pos], loc,
                         value=(width, value & mask, xmask & mask))
        text = self.src[start:self.pos].replace("_", "")
        return Token(TokKind.NUMBER, text, loc, value=int(text))

    def _ident(self, loc: SourceLocation) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() in "_$":
            self._advance()
        text = self.src[start:self.pos]
        kind = TokKind.KEYWORD if text in KEYWORDS else TokKind.IDENT
        return Token(kind, text, loc)

    def _systask(self, loc: SourceLocation) -> Token:
        start = self.pos
        self._advance()  # $
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.src[start:self.pos]
        if text not in SYSTEM_TASKS:
            raise LexError(f"unknown system task '{text}'", loc)
        return Token(TokKind.SYSTASK, text, loc)


def tokenize(source: str) -> list[Token]:
    return Lexer(source).tokens()
