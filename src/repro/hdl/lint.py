"""Static lint checks for mini-Verilog.

These mirror the classes of tool feedback the paper's repair loops rely on:
undriven/undeclared signals, blocking assigns in clocked blocks, incomplete
sensitivity, latch inference, and width mismatches.
"""

from __future__ import annotations

from . import ast as A
from .elaborate import eval_const, stmt_writes, _stmt_reads, _expr_reads
from .errors import LintWarning


def _has_timing(stmt: A.Stmt | None) -> bool:
    if stmt is None:
        return False
    if isinstance(stmt, (A.Delay, A.EventWait)):
        return True
    if isinstance(stmt, A.Block):
        return any(_has_timing(s) for s in stmt.stmts)
    if isinstance(stmt, A.If):
        return _has_timing(stmt.then) or _has_timing(stmt.other)
    if isinstance(stmt, A.Case):
        return any(_has_timing(i.body) for i in stmt.items)
    if isinstance(stmt, (A.For, A.While, A.Repeat)):
        return _has_timing(stmt.body)
    return False


def _decl_widths(module: A.Module) -> dict[str, int]:
    params: dict[str, int] = {}
    for p in module.parameters:
        try:
            params[p.name] = eval_const(p.default, params)
        except Exception:
            params[p.name] = 0
    widths: dict[str, int] = {}

    def width_of(rng: A.Range | None) -> int:
        if rng is None:
            return 1
        try:
            return eval_const(rng.msb, params) - eval_const(rng.lsb, params) + 1
        except Exception:
            return 1

    for port in module.ports:
        widths[port.name] = width_of(port.rng)
    for net in module.nets:
        widths[net.name] = 32 if net.kind == "integer" else width_of(net.rng)
    return widths


def _expr_width(expr: A.Expr, widths: dict[str, int]) -> int | None:
    """Best-effort static width; None when unknown/context-dependent."""
    if isinstance(expr, A.Number):
        return expr.width if expr.sized else None
    if isinstance(expr, A.Identifier):
        return widths.get(expr.name)
    if isinstance(expr, A.Index):
        return 1
    if isinstance(expr, A.Slice):
        try:
            return eval_const(expr.msb, {}) - eval_const(expr.lsb, {}) + 1
        except Exception:
            return None
    if isinstance(expr, A.Concat):
        total = 0
        for p in expr.parts:
            w = _expr_width(p, widths)
            if w is None:
                return None
            total += w
        return total
    if isinstance(expr, A.Unary) and expr.op in ("&", "|", "^", "!"):
        return 1
    if isinstance(expr, A.Binary) and expr.op in ("==", "!=", "<", "<=", ">", ">=",
                                                  "&&", "||"):
        return 1
    return None


def module_reads_writes(module: A.Module) -> tuple[set[str], set[str]]:
    """All identifiers read and written anywhere in ``module``.

    Instance connections count as both: a connected identifier may be an
    output binding (a write into this scope).  Shared by the linter and
    the critic's X-propagation rule.
    """
    reads: set[str] = set()
    writes: set[str] = set()
    for ca in module.assigns:
        _expr_reads(ca.expr, reads)
        writes.add(ca.target.name)
    for alw in module.always_blocks:
        _stmt_reads(alw.body, reads)
        stmt_writes(alw.body, writes)
        for _, sig in alw.edges:
            reads.add(sig)
    for ini in module.initial_blocks:
        _stmt_reads(ini.body, reads)
        stmt_writes(ini.body, writes)
    for inst in module.instances:
        for _, expr in inst.connections:
            if expr is not None:
                _expr_reads(expr, reads)
                if isinstance(expr, A.Identifier):
                    writes.add(expr.name)  # may be an output connection
    for func in module.functions:
        _stmt_reads(func.body, reads)
    return reads, writes


class Linter:
    """Runs all checks on a single module."""

    def __init__(self, module: A.Module):
        self.module = module
        self.warnings: list[LintWarning] = []

    def _warn(self, code: str, message: str, loc=None) -> None:
        self.warnings.append(LintWarning(code, message, loc))

    def run(self) -> list[LintWarning]:
        self._check_undeclared()
        self._check_multiple_drivers()
        self._check_blocking_in_clocked()
        self._check_nonblocking_in_comb()
        self._check_latches()
        self._check_unused()
        self._check_width_mismatch()
        return self.warnings

    # -- individual checks ---------------------------------------------------

    def _declared_names(self) -> set[str]:
        names = {p.name for p in self.module.ports}
        names |= {n.name for n in self.module.nets}
        names |= {p.name for p in self.module.parameters}
        names |= {f.name for f in self.module.functions}
        return names

    def _all_reads_writes(self) -> tuple[set[str], set[str]]:
        return module_reads_writes(self.module)

    def _check_undeclared(self) -> None:
        declared = self._declared_names()
        for func in self.module.functions:
            declared |= {a for a, _ in func.args}
            declared |= {n.name for n in func.locals}
        reads, writes = self._all_reads_writes()
        for name in sorted((reads | writes) - declared):
            self._warn("LINT-UNDECL", f"identifier '{name}' used but never declared")

    def _check_multiple_drivers(self) -> None:
        driven: dict[str, int] = {}
        for ca in self.module.assigns:
            driven[ca.target.name] = driven.get(ca.target.name, 0) + 1
        for alw in self.module.always_blocks:
            w: set[str] = set()
            stmt_writes(alw.body, w)
            for name in w:
                driven[name] = driven.get(name, 0) + 1
        for name, count in sorted(driven.items()):
            if count > 1:
                self._warn("LINT-MULTIDRIVE",
                           f"signal '{name}' is driven from {count} places")

    def _check_blocking_in_clocked(self) -> None:
        for alw in self.module.always_blocks:
            if not alw.edges or all(k == "any" for k, _ in alw.edges):
                continue
            blocking: set[str] = set()
            self._find_assigns(alw.body, blocking, want_blocking=True)
            for name in sorted(blocking):
                self._warn("LINT-BLOCKSEQ",
                           f"blocking assignment to '{name}' inside clocked always block")

    def _check_nonblocking_in_comb(self) -> None:
        for alw in self.module.always_blocks:
            if alw.edges and not all(k == "any" for k, _ in alw.edges):
                continue
            if _has_timing(alw.body):
                continue  # clock generator, not combinational logic
            nonblocking: set[str] = set()
            self._find_assigns(alw.body, nonblocking, want_blocking=False)
            for name in sorted(nonblocking):
                self._warn("LINT-NBACOMB",
                           f"non-blocking assignment to '{name}' in combinational block")

    def _find_assigns(self, stmt: A.Stmt, out: set[str], want_blocking: bool) -> None:
        if isinstance(stmt, A.Assign):
            if stmt.blocking == want_blocking:
                out.add(stmt.target.name)
        elif isinstance(stmt, A.Block):
            for s in stmt.stmts:
                self._find_assigns(s, out, want_blocking)
        elif isinstance(stmt, A.If):
            self._find_assigns(stmt.then, out, want_blocking)
            if stmt.other is not None:
                self._find_assigns(stmt.other, out, want_blocking)
        elif isinstance(stmt, A.Case):
            for item in stmt.items:
                self._find_assigns(item.body, out, want_blocking)
        elif isinstance(stmt, (A.For, A.While, A.Repeat)):
            self._find_assigns(stmt.body, out, want_blocking)

    def _check_latches(self) -> None:
        """A comb always block that doesn't assign a signal on all paths
        infers a latch."""
        for alw in self.module.always_blocks:
            if alw.edges and not all(k == "any" for k, _ in alw.edges):
                continue
            if _has_timing(alw.body):
                continue  # behavioural/testbench process, not synthesizable comb
            all_writes: set[str] = set()
            stmt_writes(alw.body, all_writes)
            always_written = self._written_on_all_paths(alw.body)
            for name in sorted(all_writes - always_written):
                self._warn("LINT-LATCH",
                           f"'{name}' not assigned on every path of combinational "
                           f"block: latch inferred")

    def _written_on_all_paths(self, stmt: A.Stmt) -> set[str]:
        if isinstance(stmt, A.Assign):
            return {stmt.target.name}
        if isinstance(stmt, A.Block):
            out: set[str] = set()
            for s in stmt.stmts:
                out |= self._written_on_all_paths(s)
            return out
        if isinstance(stmt, A.If):
            if stmt.other is None:
                return set()
            return self._written_on_all_paths(stmt.then) & \
                self._written_on_all_paths(stmt.other)
        if isinstance(stmt, A.Case):
            has_default = any(item.labels is None for item in stmt.items)
            if not has_default:
                return set()
            sets = [self._written_on_all_paths(item.body) for item in stmt.items]
            out = sets[0]
            for s in sets[1:]:
                out &= s
            return out
        return set()

    def _check_unused(self) -> None:
        reads, writes = self._all_reads_writes()
        outputs = {p.name for p in self.module.ports if p.direction == "output"}
        inputs = {p.name for p in self.module.ports if p.direction == "input"}
        for net in self.module.nets:
            if net.name not in reads and net.name not in outputs \
                    and net.name not in writes:
                self._warn("LINT-UNUSED", f"net '{net.name}' is never used")
        for name in sorted(inputs - reads):
            self._warn("LINT-UNUSEDIN", f"input port '{name}' is never read")
        for name in sorted(outputs - writes):
            self._warn("LINT-UNDRIVEN", f"output port '{name}' is never driven")

    def _check_width_mismatch(self) -> None:
        widths = _decl_widths(self.module)
        for ca in self.module.assigns:
            if ca.target.index is not None or ca.target.msb is not None:
                continue
            lhs = widths.get(ca.target.name)
            rhs = _expr_width(ca.expr, widths)
            if lhs is not None and rhs is not None and lhs != rhs:
                self._warn("LINT-WIDTH",
                           f"assign to '{ca.target.name}' ({lhs} bits) from "
                           f"{rhs}-bit expression")


def lint_module(module: A.Module) -> list[LintWarning]:
    return Linter(module).run()


def lint_source(source) -> list[LintWarning]:
    """Lint every module in a parsed :class:`SourceFile`."""
    out: list[LintWarning] = []
    for module in source.modules.values():
        out.extend(lint_module(module))
    return out
