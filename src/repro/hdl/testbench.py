"""Testbench execution harness and direct stimulus driver.

Two ways to exercise a design:

* :func:`run_testbench` — compile DUT + testbench source together, simulate,
  and score by the PASS/FAIL lines the testbench prints (the contract used by
  the paper's feedback loops: the EDA tool output *is* the reward signal).
* :class:`StimulusRunner` — poke/peek ports directly from Python, used by the
  ranking flows (VRank/AutoChip) to compare candidate designs on identical
  input vectors without trusting any generated testbench.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..obs import get_metrics, get_tracer
from .compile import (CompileCache, CompiledDesign, cache_enabled,
                      compile_design, get_default_cache, source_key)
from .compiled import (CompiledProgram, CompiledSim, UnsupportedDesign,
                       XBail, compile_program)
from .elaborate import Design
from .errors import HdlError
from .simulator import Simulator
from .values import Logic


@dataclass
class TestbenchResult:
    """Outcome of one compile+simulate run of a testbench."""

    compiled: bool
    pass_count: int = 0
    fail_count: int = 0
    error_count: int = 0
    finished: bool = False
    output: list[str] = field(default_factory=list)
    compile_error: str = ""
    runtime_error: str = ""
    sim_time: int = 0

    @property
    def total_checks(self) -> int:
        return self.pass_count + self.fail_count + self.error_count

    @property
    def score(self) -> float:
        """Fraction of checks passed; 0.0 when nothing ran or compile failed."""
        if not self.compiled or self.runtime_error:
            return 0.0
        total = self.total_checks
        if total == 0:
            # A testbench that finished but checked nothing gets no credit.
            return 0.0
        return self.pass_count / total

    @property
    def passed(self) -> bool:
        return (self.compiled and not self.runtime_error and self.finished
                and self.fail_count == 0 and self.error_count == 0
                and self.pass_count > 0)

    def feedback(self, max_lines: int = 12) -> str:
        """Tool feedback text in the shape an LLM repair loop consumes."""
        if not self.compiled:
            return f"COMPILE ERROR:\n{self.compile_error}"
        if self.runtime_error:
            return f"RUNTIME ERROR:\n{self.runtime_error}"
        lines = [ln for ln in self.output
                 if "FAIL" in ln or "ERROR" in ln or "PASS" in ln]
        header = (f"simulation finished at t={self.sim_time}: "
                  f"{self.pass_count} passed, "
                  f"{self.fail_count + self.error_count} failed")
        return "\n".join([header] + lines[:max_lines])


def _copy_result(result: TestbenchResult) -> TestbenchResult:
    """Detached copy so cached results can't be poisoned by the caller."""
    return replace(result, output=list(result.output))


def _scan_checks(result: TestbenchResult) -> None:
    for line in result.output:
        if line.startswith("ERROR:"):
            continue  # already counted via error_count
        if "FAIL" in line:
            result.fail_count += 1
        elif "PASS" in line:
            result.pass_count += 1


def _simulate(design: Design, max_time: int, seed: int) -> TestbenchResult:
    sim = Simulator(design, seed=seed)
    result = TestbenchResult(compiled=True)
    try:
        sim.run(max_time=max_time)
    except HdlError as exc:
        result.runtime_error = str(exc)
    result.output = sim.output
    result.error_count = sim.error_count
    result.finished = sim.finished
    result.sim_time = sim.time
    _scan_checks(result)
    return result


def _simulate_compiled(program: CompiledProgram, max_time: int,
                       seed: int) -> TestbenchResult:
    """Run the compiled engine.  Raises :class:`XBail` when the event
    engine must re-run the case (it reproduces the authoritative error)."""
    sim = CompiledSim(program, seed=seed)
    sim.run(max_time=max_time)
    result = TestbenchResult(compiled=True)
    result.output = sim.output
    result.error_count = sim.error_count
    result.finished = sim.finished
    result.sim_time = sim.time
    _scan_checks(result)
    return result


def _obtain_program(compiled: CompiledDesign, cache: CompileCache,
                    use_cache: bool) -> tuple:
    """``("ok", program)`` or ``("ineligible", reason)`` for a design,
    served from the program cache when possible (negative results cache
    too, so an unsupported design is analysed once)."""
    if use_cache:
        entry = cache.get_program(compiled.key)
        if entry is not None:
            return entry
    with get_tracer().span("hdl.compile_program", top=compiled.top) as sp:
        try:
            entry = ("ok", compile_program(compiled.design))
        except UnsupportedDesign as exc:
            entry = ("ineligible", str(exc))
        sp.set(eligible=entry[0] == "ok")
    if use_cache:
        cache.put_program(compiled.key, entry)
    return entry


def _run_engine(compiled: CompiledDesign, max_time: int, seed: int,
                mode: str, cache: CompileCache,
                use_cache: bool) -> TestbenchResult:
    """Simulate with the selected engine; results are engine-independent.

    ``auto`` uses the compiled fast path only when the program cache can
    amortize compilation (one-shot uncached runs are faster on the event
    engine); ``compiled`` always tries it.  Ineligible designs and runtime
    bails fall back to the event engine — the authoritative semantics.
    """
    tracer = get_tracer()
    if mode == "compiled" or (mode == "auto" and use_cache):
        entry = _obtain_program(compiled, cache, use_cache)
        if entry[0] == "ok":
            try:
                with tracer.span("hdl.sim", backend="compiled",
                                 top=compiled.top):
                    return _simulate_compiled(entry[1], max_time, seed)
            except XBail:
                if tracer.enabled:
                    get_metrics().counter("sim.backend.fallbacks").add(1)
        elif tracer.enabled:
            get_metrics().counter("sim.backend.ineligible").add(1)
    with tracer.span("hdl.sim", backend="event", top=compiled.top):
        return _simulate(compiled.design, max_time, seed)


def run_testbench(source: str, top: str, max_time: int = 200_000,
                  seed: int = 1, tb_source: str | None = None,
                  cache: CompileCache | None = None) -> TestbenchResult:
    """Compile and run testbench module ``top``.

    ``source`` holds the DUT (plus testbench, in the legacy single-blob
    form); passing the testbench separately via ``tb_source`` lets the
    compile cache reuse the testbench parse across every candidate of a
    problem.  A run is a pure function of ``(sources, top, max_time, seed)``,
    so identical invocations are served from the result memo.
    """
    from ..config import get_settings
    units = (source,) if tb_source is None else (source, tb_source)
    use_cache = cache_enabled()
    cache = cache or get_default_cache()
    mode = get_settings().sim_engine
    if use_cache:
        rkey = ("tb", tuple(source_key(u) for u in units), top, max_time,
                seed, mode)
        hit = cache.get_result(rkey)
        if hit is not None:
            return _copy_result(hit)
    try:
        compiled = compile_design(units, top, cache=cache)
    except HdlError as exc:
        if tb_source is None:
            result = TestbenchResult(compiled=False, compile_error=str(exc))
        else:
            # Report the error the concatenated compile would have produced
            # (feedback text feeds seeded repair loops, so it must not drift
            # with the compilation strategy).  A malformed DUT can even
            # splice into the testbench text and "compile" — honour that.
            result = run_testbench("\n".join(units), top, max_time=max_time,
                                   seed=seed, cache=cache)
        if use_cache:
            cache.put_result(rkey, result)
        return _copy_result(result)
    result = _run_engine(compiled, max_time, seed, mode, cache, use_cache)
    if use_cache:
        cache.put_result(rkey, result)
    return _copy_result(result)


class StimulusRunner:
    """Drives a single module's ports directly, without a Verilog testbench."""

    def __init__(self, source: str | CompiledDesign, top: str, seed: int = 1,
                 cache: CompileCache | None = None):
        if isinstance(source, CompiledDesign):
            self.design = source.design
        else:
            self.design = compile_design(source, top, cache=cache).design
        self.top = top
        self.sim = Simulator(self.design, seed=seed)
        self._ports = {name: sig for name, sig in self.design.signals.items()
                       if sig.is_port}
        # Prime time-zero evaluation of combinational logic.
        for idx, proc in enumerate(self.design.processes):
            if proc.kind == "assign" or (proc.kind == "always" and not proc.edges
                                         and not self.sim._has_timing(proc.body)):
                self.sim._active.append(("comb", idx))
        self.settle()

    @property
    def inputs(self) -> list[str]:
        return [n for n, s in self._ports.items() if s.direction == "input"]

    @property
    def outputs(self) -> list[str]:
        return [n for n, s in self._ports.items() if s.direction == "output"]

    def width_of(self, port: str) -> int:
        return self._ports[port].width

    def poke(self, port: str, value: int) -> None:
        sig = self._ports.get(port)
        if sig is None or sig.direction != "input":
            raise KeyError(f"'{port}' is not an input port of '{self.top}'")
        self.sim._set_signal(port, Logic.from_int(value, sig.width))

    def peek(self, port: str) -> Logic:
        if port not in self._ports:
            raise KeyError(f"'{port}' is not a port of '{self.top}'")
        return self.sim.values[port]

    def settle(self, max_iters: int = 100_000) -> None:
        """Drain the active/NBA queues at the current time (delta cycles)."""
        sim = self.sim
        iters = 0
        sim._steps_this_slot = 0
        while sim._active or sim._nba:
            iters += 1
            if iters > max_iters:
                raise HdlError("design did not settle (combinational loop?)")
            while sim._active:
                item = sim._active.pop(0)
                tag = item[0]
                if tag == "comb":
                    sim._run_comb(item[1])
                elif tag == "edge":
                    proc = sim.design.processes[item[1]]
                    from .simulator import Frame
                    sim._exec_sync(proc.body, Frame(proc.scope))
                elif tag in ("start", "restart", "resume"):
                    # Coroutine activity is ignored by the direct driver.
                    continue
            sim._apply_nba()

    def clock_cycle(self, clk: str = "clk") -> None:
        """Apply one rising edge (and return the clock to zero)."""
        self.poke(clk, 0)
        self.settle()
        self.poke(clk, 1)
        self.settle()
        self.poke(clk, 0)
        self.settle()

    def apply(self, vector: dict[str, int], clk: str | None = None) -> dict[str, Logic]:
        """Drive one input vector; pulse ``clk`` if given; return all outputs."""
        for port, value in vector.items():
            self.poke(port, value)
        if clk is not None:
            self.clock_cycle(clk)
        else:
            self.settle()
        return {name: self.peek(name) for name in self.outputs}


def exercise_module(source: str | CompiledDesign, top: str,
                    vectors: list[dict[str, int]],
                    clk: str | None = None,
                    reset: str | None = None,
                    cache: CompileCache | None = None) -> list[dict[str, str]] | None:
    """Run input vectors through a module; returns output signatures.

    Returns ``None`` when the design fails to compile or simulate — callers
    use that as "candidate is broken".  Output values are stringified so X
    states are preserved in the signature (important for consistency
    clustering in VRank).
    """
    try:
        runner = StimulusRunner(source, top, cache=cache)
        if reset is not None and reset in runner.inputs:
            runner.poke(reset, 1)
            if clk is not None:
                runner.clock_cycle(clk)
            runner.poke(reset, 0)
            runner.settle()
        signatures: list[dict[str, str]] = []
        for vec in vectors:
            usable = {k: v for k, v in vec.items() if k in runner.inputs}
            outs = runner.apply(usable, clk=clk)
            signatures.append({name: str(val) for name, val in outs.items()})
        return signatures
    except (HdlError, KeyError):
        return None
