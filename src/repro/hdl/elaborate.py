"""Elaboration: resolve parameters and flatten hierarchy.

The output of elaboration is a :class:`Design` — a flat list of signals and
processes with fully-resolved hierarchical names.  Module instances are
flattened by cloning the child module's contents under a ``parent.child``
name prefix and stitching ports with continuous assignments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast as A
from .errors import ElaborationError
from .values import Logic

# --------------------------------------------------------------------------
# Constant expression evaluation (parameters, ranges, replication counts)
# --------------------------------------------------------------------------


def eval_const(expr: A.Expr, params: dict[str, int]) -> int:
    if isinstance(expr, A.Number):
        if expr.xmask:
            raise ElaborationError("X bits are not allowed in constant expressions")
        return expr.value
    if isinstance(expr, A.Identifier):
        if expr.name not in params:
            raise ElaborationError(f"'{expr.name}' is not a parameter or constant", expr.loc)
        return params[expr.name]
    if isinstance(expr, A.Unary):
        v = eval_const(expr.operand, params)
        return {
            "-": lambda x: -x, "+": lambda x: x, "~": lambda x: ~x,
            "!": lambda x: 0 if x else 1,
        }.get(expr.op, lambda x: (_ for _ in ()).throw(
            ElaborationError(f"unary '{expr.op}' not allowed in constant expression")))(v)
    if isinstance(expr, A.Binary):
        a = eval_const(expr.left, params)
        b = eval_const(expr.right, params)
        ops = {
            "+": a + b, "-": a - b, "*": a * b,
            "/": a // b if b else 0, "%": a % b if b else 0,
            "<<": a << b, ">>": a >> b, "**": a ** b,
            "&": a & b, "|": a | b, "^": a ^ b,
            "==": int(a == b), "!=": int(a != b),
            "<": int(a < b), "<=": int(a <= b), ">": int(a > b), ">=": int(a >= b),
            "&&": int(bool(a) and bool(b)), "||": int(bool(a) or bool(b)),
        }
        if expr.op not in ops:
            raise ElaborationError(f"binary '{expr.op}' not allowed in constant expression")
        return ops[expr.op]
    if isinstance(expr, A.Ternary):
        return (eval_const(expr.if_true, params) if eval_const(expr.cond, params)
                else eval_const(expr.if_false, params))
    raise ElaborationError(f"{type(expr).__name__} not allowed in constant expression")


# --------------------------------------------------------------------------
# Flat design data model
# --------------------------------------------------------------------------


@dataclass
class Signal:
    name: str          # flat hierarchical name
    width: int
    kind: str          # wire | reg | integer
    init: Logic | None = None
    is_port: bool = False
    direction: str = ""   # only for top-level ports


@dataclass
class Scope:
    """Per-instance name resolution for a cloned module body."""

    prefix: str
    names: dict[str, str] = field(default_factory=dict)     # local -> flat
    params: dict[str, int] = field(default_factory=dict)
    functions: dict[str, A.Function] = field(default_factory=dict)

    def resolve(self, local: str) -> str:
        flat = self.names.get(local)
        if flat is None:
            raise ElaborationError(f"undeclared identifier '{local}' in scope '{self.prefix or '<top>'}'")
        return flat


@dataclass
class Process:
    kind: str                       # 'assign' | 'always' | 'initial'
    scope: Scope
    body: A.Stmt | None = None
    target: A.LValue | None = None  # for continuous assigns
    expr: A.Expr | None = None
    edges: tuple[tuple[str, str], ...] = ()   # (edge kind, FLAT signal name)
    deps: frozenset[str] = frozenset()        # flat names that retrigger comb processes
    name: str = ""


@dataclass
class Design:
    top: str
    signals: dict[str, Signal] = field(default_factory=dict)
    processes: list[Process] = field(default_factory=list)

    def signal(self, name: str) -> Signal:
        return self.signals[name]


# --------------------------------------------------------------------------
# Read-set analysis (for @* and continuous-assign sensitivity)
# --------------------------------------------------------------------------


def _expr_reads(expr: A.Expr, out: set[str]) -> None:
    if isinstance(expr, A.Identifier):
        out.add(expr.name)
    elif isinstance(expr, A.Unary):
        _expr_reads(expr.operand, out)
    elif isinstance(expr, A.Binary):
        _expr_reads(expr.left, out)
        _expr_reads(expr.right, out)
    elif isinstance(expr, A.Ternary):
        for e in (expr.cond, expr.if_true, expr.if_false):
            _expr_reads(e, out)
    elif isinstance(expr, A.Concat):
        for e in expr.parts:
            _expr_reads(e, out)
    elif isinstance(expr, A.Replicate):
        _expr_reads(expr.count, out)
        _expr_reads(expr.inner, out)
    elif isinstance(expr, (A.Index, A.Slice)):
        out.add(expr.target)
        if isinstance(expr, A.Index):
            _expr_reads(expr.index, out)
        else:
            _expr_reads(expr.msb, out)
            _expr_reads(expr.lsb, out)
    elif isinstance(expr, (A.SystemCall, A.FunctionCall)):
        for e in expr.args:
            _expr_reads(e, out)


def _stmt_reads(stmt: A.Stmt, out: set[str]) -> None:
    if isinstance(stmt, A.Assign):
        _expr_reads(stmt.expr, out)
        if stmt.target.index is not None:
            _expr_reads(stmt.target.index, out)
    elif isinstance(stmt, A.Block):
        for s in stmt.stmts:
            _stmt_reads(s, out)
    elif isinstance(stmt, A.If):
        _expr_reads(stmt.cond, out)
        _stmt_reads(stmt.then, out)
        if stmt.other is not None:
            _stmt_reads(stmt.other, out)
    elif isinstance(stmt, A.Case):
        _expr_reads(stmt.subject, out)
        for item in stmt.items:
            if item.labels:
                for lab in item.labels:
                    _expr_reads(lab, out)
            _stmt_reads(item.body, out)
    elif isinstance(stmt, (A.For,)):
        _expr_reads(stmt.cond, out)
        _stmt_reads(stmt.init, out)
        _stmt_reads(stmt.step, out)
        _stmt_reads(stmt.body, out)
    elif isinstance(stmt, A.While):
        _expr_reads(stmt.cond, out)
        _stmt_reads(stmt.body, out)
    elif isinstance(stmt, A.Repeat):
        _expr_reads(stmt.count, out)
        _stmt_reads(stmt.body, out)
    elif isinstance(stmt, A.Delay):
        if stmt.then is not None:
            _stmt_reads(stmt.then, out)
    elif isinstance(stmt, A.SysTask):
        for e in stmt.args:
            _expr_reads(e, out)


def stmt_writes(stmt: A.Stmt, out: set[str]) -> None:
    """Collect names assigned anywhere in ``stmt``."""
    if isinstance(stmt, A.Assign):
        out.add(stmt.target.name)
    elif isinstance(stmt, A.Block):
        for s in stmt.stmts:
            stmt_writes(s, out)
    elif isinstance(stmt, A.If):
        stmt_writes(stmt.then, out)
        if stmt.other is not None:
            stmt_writes(stmt.other, out)
    elif isinstance(stmt, A.Case):
        for item in stmt.items:
            stmt_writes(item.body, out)
    elif isinstance(stmt, A.For):
        stmt_writes(stmt.init, out)
        stmt_writes(stmt.step, out)
        stmt_writes(stmt.body, out)
    elif isinstance(stmt, (A.While, A.Repeat)):
        stmt_writes(stmt.body, out)
    elif isinstance(stmt, A.Delay) and stmt.then is not None:
        stmt_writes(stmt.then, out)


# --------------------------------------------------------------------------
# Elaborator
# --------------------------------------------------------------------------

MAX_HIER_DEPTH = 32


class Elaborator:
    def __init__(self, source: A.SourceFile):
        self.source = source
        self.design: Design | None = None

    def elaborate(self, top: str) -> Design:
        if top not in self.source.modules:
            raise ElaborationError(f"top module '{top}' not found")
        self.design = Design(top=top)
        module = self.source.modules[top]
        scope = self._instantiate(module, prefix="", overrides={}, depth=0)
        # Record top-level port metadata for the harness.
        for port in module.ports:
            flat = scope.resolve(port.name)
            sig = self.design.signals[flat]
            sig.is_port = True
            sig.direction = port.direction
        return self.design

    # -- per-instance cloning ------------------------------------------------

    def _range_width(self, rng: A.Range | None, params: dict[str, int]) -> int:
        if rng is None:
            return 1
        msb = eval_const(rng.msb, params)
        lsb = eval_const(rng.lsb, params)
        if lsb != 0:
            raise ElaborationError(f"only [msb:0] ranges are supported, got [{msb}:{lsb}]")
        if msb < 0:
            raise ElaborationError(f"negative range bound [{msb}:0]")
        return msb + 1

    def _instantiate(self, module: A.Module, prefix: str,
                     overrides: dict[str, int], depth: int) -> Scope:
        if depth > MAX_HIER_DEPTH:
            raise ElaborationError(
                f"hierarchy deeper than {MAX_HIER_DEPTH} (recursive instantiation of "
                f"'{module.name}'?)")
        design = self.design
        assert design is not None

        params: dict[str, int] = {}
        for p in module.parameters:
            if not p.local and p.name in overrides:
                params[p.name] = overrides[p.name]
            else:
                params[p.name] = eval_const(p.default, params)
        for name in overrides:
            if name not in params:
                raise ElaborationError(f"unknown parameter '{name}' on module '{module.name}'")

        scope = Scope(prefix=prefix, params=params)
        scope.functions = {f.name: f for f in module.functions}

        def flat(local: str) -> str:
            return f"{prefix}{local}" if not prefix else f"{prefix}.{local}"

        declared: set[str] = set()

        for port in module.ports:
            if not port.direction:
                raise ElaborationError(
                    f"port '{port.name}' of '{module.name}' has no direction declaration")
            if port.direction == "inout":
                raise ElaborationError("inout ports are not supported by this subset")
            width = self._range_width(port.rng, params)
            name = flat(port.name)
            kind = "reg" if port.is_reg else "wire"
            init = Logic.unknown(width) if kind == "reg" else None
            design.signals[name] = Signal(name, width, kind, init)
            scope.names[port.name] = name
            declared.add(port.name)

        wire_init_assigns: list[A.Net] = []
        for net in module.nets:
            if net.name in declared:
                # 'output reg q;' + 'reg q;' double declaration — tolerate wire/reg re-decl
                continue
            width = 32 if net.kind == "integer" else self._range_width(net.rng, params)
            name = flat(net.name)
            init = None
            if net.init is not None:
                try:
                    init = Logic.from_int(eval_const(net.init, params), width)
                except ElaborationError:
                    if net.kind == "wire":
                        # 'wire x = expr;' with a non-constant expression is a
                        # continuous assignment.
                        wire_init_assigns.append(net)
                        init = None
                    else:
                        raise
            elif net.kind in ("reg", "integer"):
                init = Logic.unknown(width)
            design.signals[name] = Signal(name, width, net.kind, init)
            scope.names[net.name] = name
            declared.add(net.name)

        for net in wire_init_assigns:
            deps0: set[str] = set()
            _expr_reads(net.init, deps0)
            flat_deps0 = frozenset(scope.names[d] for d in deps0
                                   if d in scope.names)
            design.processes.append(Process(
                kind="assign", scope=scope,
                target=A.LValue(net.name), expr=net.init, deps=flat_deps0,
                name=f"{prefix or module.name}:wireinit:{net.name}"))

        # Continuous assigns.
        for ca in module.assigns:
            deps: set[str] = set()
            _expr_reads(ca.expr, deps)
            if ca.target.index is not None:
                _expr_reads(ca.target.index, deps)
            flat_deps = frozenset(scope.names[d] for d in deps if d in scope.names)
            design.processes.append(Process(
                kind="assign", scope=scope, target=ca.target, expr=ca.expr,
                deps=flat_deps, name=f"{prefix or module.name}:assign:{ca.target.name}"))

        # Always blocks.
        for idx, alw in enumerate(module.always_blocks):
            if alw.is_star:
                reads: set[str] = set()
                _stmt_reads(alw.body, reads)
                writes: set[str] = set()
                stmt_writes(alw.body, writes)
                dep_names = (reads - writes) | (reads & writes & set())
                flat_deps = frozenset(scope.names[d] for d in reads - writes
                                      if d in scope.names)
                design.processes.append(Process(
                    kind="always", scope=scope, body=alw.body, edges=(),
                    deps=flat_deps, name=f"{prefix or module.name}:always*{idx}"))
            else:
                edges = []
                level = all(kind == "any" for kind, _ in alw.edges)
                for kind, sig in alw.edges:
                    if sig not in scope.names:
                        raise ElaborationError(
                            f"sensitivity signal '{sig}' not declared in '{module.name}'")
                    edges.append((kind, scope.names[sig]))
                if level:
                    design.processes.append(Process(
                        kind="always", scope=scope, body=alw.body, edges=(),
                        deps=frozenset(f for _, f in edges),
                        name=f"{prefix or module.name}:always@{idx}"))
                else:
                    design.processes.append(Process(
                        kind="always", scope=scope, body=alw.body,
                        edges=tuple(edges), deps=frozenset(),
                        name=f"{prefix or module.name}:always_ff{idx}"))

        for idx, ini in enumerate(module.initial_blocks):
            design.processes.append(Process(
                kind="initial", scope=scope, body=ini.body,
                name=f"{prefix or module.name}:initial{idx}"))

        # Child instances.
        for inst in module.instances:
            self._elaborate_instance(module, inst, scope, prefix, depth)

        return scope

    def _elaborate_instance(self, parent: A.Module, inst: A.Instance,
                            scope: Scope, prefix: str, depth: int) -> None:
        design = self.design
        assert design is not None
        if inst.module not in self.source.modules:
            raise ElaborationError(
                f"instance '{inst.name}' references unknown module '{inst.module}'", inst.loc)
        child = self.source.modules[inst.module]
        child_prefix = f"{prefix}.{inst.name}" if prefix else inst.name

        # Parameter overrides.
        overrides: dict[str, int] = {}
        nonlocal_params = [p for p in child.parameters if not p.local]
        for pos, (pname, pexpr) in enumerate(inst.param_overrides):
            value = eval_const(pexpr, scope.params)
            if pname is None:
                if pos >= len(nonlocal_params):
                    raise ElaborationError(
                        f"too many positional parameters for '{child.name}'", inst.loc)
                overrides[nonlocal_params[pos].name] = value
            else:
                overrides[pname] = value

        child_scope = self._instantiate(child, child_prefix, overrides, depth + 1)

        # Port connections.
        conns: list[tuple[A.Port, A.Expr | None]] = []
        if inst.connections and inst.connections[0][0] is None:
            if len(inst.connections) > len(child.ports):
                raise ElaborationError(
                    f"too many positional connections on '{inst.name}'", inst.loc)
            for port, (_, expr) in zip(child.ports, inst.connections):
                conns.append((port, expr))
        else:
            by_name = {p.name: p for p in child.ports}
            for pname, expr in inst.connections:
                if pname not in by_name:
                    raise ElaborationError(
                        f"module '{child.name}' has no port '{pname}'", inst.loc)
                conns.append((by_name[pname], expr))

        for port, expr in conns:
            if expr is None:
                continue  # unconnected
            child_flat = child_scope.resolve(port.name)
            if port.direction == "input":
                deps: set[str] = set()
                _expr_reads(expr, deps)
                flat_deps = frozenset(scope.names[d] for d in deps if d in scope.names)
                design.processes.append(Process(
                    kind="assign", scope=Scope(prefix, dict(scope.names), scope.params,
                                               scope.functions),
                    target=A.LValue(f"\0{child_flat}"), expr=expr, deps=flat_deps,
                    name=f"{child_prefix}:port_in:{port.name}"))
            else:  # output
                conn_scope = Scope(prefix, {}, scope.params, scope.functions)
                conn_scope.names["__src"] = child_flat
                if isinstance(expr, A.Identifier):
                    parent_flat = scope.resolve(expr.name)
                    target = A.LValue(f"\0{parent_flat}")
                elif isinstance(expr, A.Slice):
                    parent_flat = scope.resolve(expr.target)
                    msb = A.Number(32, eval_const(expr.msb, scope.params))
                    lsb = A.Number(32, eval_const(expr.lsb, scope.params))
                    target = A.LValue(f"\0{parent_flat}", None, msb, lsb)
                elif isinstance(expr, A.Index):
                    parent_flat = scope.resolve(expr.target)
                    idx = A.Number(32, eval_const(expr.index, scope.params))
                    target = A.LValue(f"\0{parent_flat}", idx)
                else:
                    raise ElaborationError(
                        f"output port '{port.name}' of '{inst.name}' must connect "
                        f"to a signal, bit-select, or constant part-select",
                        inst.loc)
                design.processes.append(Process(
                    kind="assign", scope=conn_scope, target=target,
                    expr=A.Identifier("__src"), deps=frozenset({child_flat}),
                    name=f"{child_prefix}:port_out:{port.name}"))


def elaborate(source: A.SourceFile, top: str) -> Design:
    return Elaborator(source).elaborate(top)
