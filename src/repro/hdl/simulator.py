"""Event-driven simulator for elaborated mini-Verilog designs.

Implements the stratified Verilog event model:

* an *active* queue of process activations at the current time,
* a *non-blocking assign* (NBA) update queue applied once the active queue
  drains (its updates can re-fill the active queue within the same time), and
* a time-ordered heap of future wakeups for ``#delay`` and clock generators.

Behavioural statements are interpreted with Python generators so that initial
blocks (and ``always #5 clk = ~clk`` style clock generators) can suspend on
delays and edge waits.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from . import ast as A
from ..obs import get_metrics, get_tracer
from .elaborate import Design, Process, Scope
from .errors import SimulationError
from .values import Logic, concat_all


class _Finish(Exception):
    """Raised internally by $finish/$stop to unwind the current process."""


@dataclass
class Frame:
    """Name-resolution context for one executing process."""

    scope: Scope
    locals: dict[str, Logic] | None = None  # function-call frame


@dataclass
class _EdgeWait:
    edges: tuple[tuple[str, str], ...]
    coroutine: object
    proc: Process
    done: bool = False  # set when resumed, so multi-signal waits fire once


_MAX_STEPS_PER_SLOT = 200_000


class Simulator:
    """Runs an elaborated :class:`Design`.

    Public attributes after :meth:`run`:

    * ``time`` — final simulation time,
    * ``output`` — lines printed by ``$display``/``$write``/``$monitor``,
    * ``error_count`` — number of ``$error`` calls,
    * ``finished`` — whether ``$finish`` was executed.
    """

    def __init__(self, design: Design, seed: int = 1):
        self.design = design
        self.time = 0
        self.output: list[str] = []
        self.error_count = 0
        self.finished = False
        self._rand_state = (seed * 2654435761 + 1) & 0xFFFFFFFF

        # Scheduler telemetry: plain integer counters (cheap enough to keep
        # always on) published to :mod:`repro.obs` after :meth:`run` when
        # tracing is enabled.  ``delta_cycles`` counts active-queue drains
        # within one time slot (the Δ-cycles of the stratified event model).
        self.events_processed = 0
        self.delta_cycles = 0
        self.nba_updates = 0
        self.time_slots = 0

        self.values: dict[str, Logic] = {}
        for sig in design.signals.values():
            self.values[sig.name] = sig.init if sig.init is not None else Logic(sig.width, 0, 0)

        # Static sensitivity maps.
        self._comb_watch: dict[str, list[int]] = {}
        self._edge_watch: dict[str, list[tuple[str, int]]] = {}
        self._edge_waiters: dict[str, list[_EdgeWait]] = {}
        self._coroutines: list[tuple[Process, bool]] = []  # (proc, restart_when_done)

        for idx, proc in enumerate(design.processes):
            if proc.kind == "assign" or (proc.kind == "always" and not proc.edges
                                         and not self._has_timing(proc.body)):
                for dep in proc.deps:
                    self._comb_watch.setdefault(dep, []).append(idx)
            elif proc.kind == "always" and proc.edges:
                for kind, sig in proc.edges:
                    self._edge_watch.setdefault(sig, []).append((kind, idx))
            elif proc.kind == "always":
                self._coroutines.append((proc, True))
            else:  # initial
                self._coroutines.append((proc, False))

        # Scheduler state.
        self._active: list[tuple] = []
        self._nba: list[tuple[str, int | None, int | None, Logic]] = []
        self._heap: list[tuple[int, int, tuple]] = []
        self._heap_seq = 0
        self._steps_this_slot = 0
        self._monitors: list[tuple[Process, A.SysTask]] = []

    # -- small helpers -------------------------------------------------------

    @staticmethod
    def _has_timing(stmt: A.Stmt | None) -> bool:
        if stmt is None:
            return False
        if isinstance(stmt, (A.Delay, A.EventWait)):
            return True
        if isinstance(stmt, A.Block):
            return any(Simulator._has_timing(s) for s in stmt.stmts)
        if isinstance(stmt, A.If):
            return Simulator._has_timing(stmt.then) or Simulator._has_timing(stmt.other)
        if isinstance(stmt, A.Case):
            return any(Simulator._has_timing(i.body) for i in stmt.items)
        if isinstance(stmt, (A.For, A.While, A.Repeat)):
            return Simulator._has_timing(stmt.body)
        return False

    def _rand32(self) -> int:
        self._rand_state = (self._rand_state * 1103515245 + 12345) & 0xFFFFFFFF
        return self._rand_state

    def _resolve(self, frame: Frame, name: str) -> str:
        if name.startswith("\0"):
            return name[1:]
        return frame.scope.resolve(name)

    def _signal_width(self, flat: str) -> int:
        return self.design.signals[flat].width

    # -- expression evaluation -----------------------------------------------

    def eval(self, expr: A.Expr, frame: Frame) -> Logic:
        if isinstance(expr, A.Number):
            return Logic(expr.width, expr.value, expr.xmask)
        if isinstance(expr, A.StringLit):
            data = expr.text.encode()
            width = max(8, len(data) * 8)
            return Logic.from_int(int.from_bytes(data, "big") if data else 0, width)
        if isinstance(expr, A.Identifier):
            if frame.locals is not None and expr.name in frame.locals:
                return frame.locals[expr.name]
            if expr.name in frame.scope.params:
                return Logic.from_int(frame.scope.params[expr.name], 32)
            flat = self._resolve(frame, expr.name)
            return self.values[flat]
        if isinstance(expr, A.Unary):
            v = self.eval(expr.operand, frame)
            return {
                "~": v.not_, "-": v.neg, "!": v.logical_not,
                "&": v.reduce_and, "|": v.reduce_or, "^": v.reduce_xor,
                "+": lambda: v,
            }[expr.op]()
        if isinstance(expr, A.Binary):
            a = self.eval(expr.left, frame)
            # Short-circuit logical ops.
            if expr.op == "&&" and a.is_false():
                return Logic(1, 0, 0)
            if expr.op == "||" and a.is_true():
                return Logic(1, 1, 0)
            b = self.eval(expr.right, frame)
            return {
                "+": a.add, "-": a.sub, "*": a.mul, "/": a.div, "%": a.mod,
                "**": a.pow,
                "&": a.and_, "|": a.or_, "^": a.xor,
                "<<": a.shl, ">>": a.shr,
                "==": a.eq, "!=": a.ne, "<": a.lt, "<=": a.le,
                ">": a.gt, ">=": a.ge,
                "&&": a.logical_and, "||": a.logical_or,
            }[expr.op](b)
        if isinstance(expr, A.Ternary):
            # Verilog sizes a ternary by the wider of its two branches, so
            # both widths matter even when the condition is known (the
            # synthesizer bit-blasts with the same rule).
            cond = self.eval(expr.cond, frame)
            t = self.eval(expr.if_true, frame)
            f = self.eval(expr.if_false, frame)
            width = max(t.width, f.width)
            if cond.is_true():
                return t.resize(width)
            if cond.is_false():
                return f.resize(width)
            return Logic.unknown(width)
        if isinstance(expr, A.Concat):
            return concat_all([self.eval(p, frame) for p in expr.parts])
        if isinstance(expr, A.Replicate):
            count = self.eval(expr.count, frame)
            if count.has_x:
                raise SimulationError("replication count is X")
            return self.eval(expr.inner, frame).replicate(count.to_int())
        if isinstance(expr, A.Index):
            base = self._read_name(expr.target, frame)
            idx = self.eval(expr.index, frame)
            if idx.has_x:
                return Logic.unknown(1)
            return base.bit(idx.to_int())
        if isinstance(expr, A.Slice):
            base = self._read_name(expr.target, frame)
            msb = self.eval(expr.msb, frame)
            lsb = self.eval(expr.lsb, frame)
            if msb.has_x or lsb.has_x:
                raise SimulationError("part-select bound is X")
            return base.slice(msb.to_int(), lsb.to_int())
        if isinstance(expr, A.SystemCall):
            return self._system_func(expr, frame)
        if isinstance(expr, A.FunctionCall):
            return self._call_function(expr, frame)
        raise SimulationError(f"cannot evaluate {type(expr).__name__}")

    def _read_name(self, name: str, frame: Frame) -> Logic:
        if frame.locals is not None and name in frame.locals:
            return frame.locals[name]
        if name in frame.scope.params:
            return Logic.from_int(frame.scope.params[name], 32)
        return self.values[self._resolve(frame, name)]

    def _system_func(self, expr: A.SystemCall, frame: Frame) -> Logic:
        if expr.name == "$time":
            return Logic.from_int(self.time, 64)
        if expr.name == "$random":
            return Logic.from_int(self._rand32(), 32)
        if expr.name in ("$signed", "$unsigned"):
            if len(expr.args) != 1:
                raise SimulationError(f"{expr.name} takes one argument")
            return self.eval(expr.args[0], frame)
        raise SimulationError(f"system function '{expr.name}' not supported in expressions")

    def _call_function(self, expr: A.FunctionCall, frame: Frame) -> Logic:
        func = frame.scope.functions.get(expr.name)
        if func is None:
            raise SimulationError(f"call to undeclared function '{expr.name}'")
        if len(expr.args) != len(func.args):
            raise SimulationError(
                f"function '{func.name}' expects {len(func.args)} args, got {len(expr.args)}")
        locals_: dict[str, Logic] = {}
        params = frame.scope.params
        from .elaborate import eval_const
        for (aname, arng), arg in zip(func.args, expr.args):
            width = 1 if arng is None else eval_const(arng.msb, params) + 1
            locals_[aname] = self.eval(arg, frame).resize(width)
        ret_width = 1 if func.rng is None else eval_const(func.rng.msb, params) + 1
        locals_[func.name] = Logic(ret_width, 0, 0)
        for net in func.locals:
            width = 32 if net.kind == "integer" else (
                1 if net.rng is None else eval_const(net.rng.msb, params) + 1)
            locals_[net.name] = Logic(width, 0, 0)
        inner = Frame(frame.scope, locals_)
        self._exec_sync(func.body, inner)
        return locals_[func.name]

    # -- assignment ------------------------------------------------------------

    def _write_lvalue(self, target: A.LValue, value: Logic, frame: Frame,
                      nonblocking: bool) -> None:
        if frame.locals is not None and not target.name.startswith("\0") \
                and target.name in frame.locals:
            old = frame.locals[target.name]
            frame.locals[target.name] = self._merge(old, target, value, frame)
            return
        flat = self._resolve(frame, target.name)
        if target.index is None and target.msb is None:
            new = value.resize(self._signal_width(flat))
            if nonblocking:
                self._nba.append((flat, None, None, new))
            else:
                self._set_signal(flat, new)
            return
        if target.index is not None:
            idx = self.eval(target.index, frame)
            if idx.has_x:
                raise SimulationError(f"write to '{target.name}' with X index")
            pos = idx.to_int()
            if nonblocking:
                self._nba.append((flat, pos, pos, value.resize(1)))
            else:
                self._set_signal(flat, self._spliced(flat, pos, pos, value))
            return
        msb = self.eval(target.msb, frame).to_int()
        lsb = self.eval(target.lsb, frame).to_int()
        if msb < lsb:
            msb, lsb = lsb, msb
        if nonblocking:
            self._nba.append((flat, msb, lsb, value.resize(msb - lsb + 1)))
        else:
            self._set_signal(flat, self._spliced(flat, msb, lsb, value))

    def _merge(self, old: Logic, target: A.LValue, value: Logic, frame: Frame) -> Logic:
        if target.index is None and target.msb is None:
            return value.resize(old.width)
        if target.index is not None:
            pos = self.eval(target.index, frame).to_int()
            msb = lsb = pos
        else:
            msb = self.eval(target.msb, frame).to_int()
            lsb = self.eval(target.lsb, frame).to_int()
        width = msb - lsb + 1
        part = value.resize(width)
        mask = ((1 << width) - 1) << lsb
        new_val = (old.value & ~mask) | ((part.value << lsb) & mask)
        new_x = (old.xmask & ~mask) | ((part.xmask << lsb) & mask)
        return Logic(old.width, new_val & ~new_x, new_x)

    def _spliced(self, flat: str, msb: int, lsb: int, value: Logic) -> Logic:
        old = self.values[flat]
        width = msb - lsb + 1
        part = value.resize(width)
        mask = ((1 << width) - 1) << lsb
        new_val = (old.value & ~mask) | ((part.value << lsb) & mask)
        new_x = (old.xmask & ~mask) | ((part.xmask << lsb) & mask)
        return Logic(old.width, new_val & ~new_x, new_x)

    def _set_signal(self, flat: str, new: Logic) -> None:
        old = self.values[flat]
        if old == new:
            return
        self.values[flat] = new
        self._notify(flat, old, new)

    def _notify(self, flat: str, old: Logic, new: Logic) -> None:
        for idx in self._comb_watch.get(flat, ()):
            self._active.append(("comb", idx))
        old_bit = old.bit(0)
        new_bit = new.bit(0)
        posedge = new_bit.value == 1 and old_bit.value != 1
        negedge = new_bit.value == 0 and not new_bit.has_x and not old_bit.is_false()
        for kind, idx in self._edge_watch.get(flat, ()):
            if (kind == "posedge" and posedge) or (kind == "negedge" and negedge) \
                    or kind == "any":
                self._active.append(("edge", idx))
        waiters = self._edge_waiters.get(flat)
        if waiters:
            still: list[_EdgeWait] = []
            for w in waiters:
                if w.done:
                    continue
                hit = any(
                    (k == "posedge" and posedge) or (k == "negedge" and negedge)
                    or (k == "any")
                    for k, s in w.edges if s == flat)
                if hit:
                    w.done = True
                    self._active.append(("resume", w))
                else:
                    still.append(w)
            self._edge_waiters[flat] = still

    # -- statement interpretation (generator form) ------------------------------

    def _exec(self, stmt: A.Stmt, frame: Frame):
        """Generator: yields ('delay', t) / ('edge', edges) scheduling requests."""
        self._steps_this_slot += 1
        if self._steps_this_slot > _MAX_STEPS_PER_SLOT:
            raise SimulationError(
                f"runaway execution at time {self.time} (combinational loop or "
                f"infinite zero-delay loop)")

        if isinstance(stmt, A.Assign):
            value = self.eval(stmt.expr, frame)
            self._write_lvalue(stmt.target, value, frame, nonblocking=not stmt.blocking)
        elif isinstance(stmt, A.Block):
            for s in stmt.stmts:
                yield from self._exec(s, frame)
        elif isinstance(stmt, A.If):
            cond = self.eval(stmt.cond, frame)
            if cond.is_true():
                yield from self._exec(stmt.then, frame)
            elif stmt.other is not None:
                yield from self._exec(stmt.other, frame)
        elif isinstance(stmt, A.Case):
            yield from self._exec_case(stmt, frame)
        elif isinstance(stmt, A.For):
            yield from self._exec(stmt.init, frame)
            while True:
                cond = self.eval(stmt.cond, frame)
                if not cond.is_true():
                    break
                yield from self._exec(stmt.body, frame)
                yield from self._exec(stmt.step, frame)
        elif isinstance(stmt, A.While):
            while self.eval(stmt.cond, frame).is_true():
                yield from self._exec(stmt.body, frame)
        elif isinstance(stmt, A.Repeat):
            count = self.eval(stmt.count, frame)
            if count.has_x:
                raise SimulationError("repeat count is X")
            for _ in range(count.to_int()):
                yield from self._exec(stmt.body, frame)
        elif isinstance(stmt, A.Delay):
            amount = self.eval(stmt.amount, frame)
            if amount.has_x:
                raise SimulationError("delay amount is X")
            yield ("delay", amount.to_int())
            if stmt.then is not None:
                yield from self._exec(stmt.then, frame)
        elif isinstance(stmt, A.EventWait):
            flat_edges = tuple((k, self._resolve(frame, s)) for k, s in stmt.edges)
            yield ("edge", flat_edges)
        elif isinstance(stmt, A.SysTask):
            self._sys_task(stmt, frame)
        else:
            raise SimulationError(f"cannot execute {type(stmt).__name__}")

    def _exec_case(self, stmt: A.Case, frame: Frame):
        subject = self.eval(stmt.subject, frame)
        default: A.CaseItem | None = None
        for item in stmt.items:
            if item.labels is None:
                default = item
                continue
            for label in item.labels:
                lv = self.eval(label, frame)
                if stmt.wildcard:
                    w = max(subject.width, lv.width)
                    a, b = subject.resize(w), lv.resize(w)
                    care = ~b.xmask
                    if (a.value & care) == (b.value & care) and not (a.xmask & care):
                        yield from self._exec(item.body, frame)
                        return
                else:
                    w = max(subject.width, lv.width)
                    a, b = subject.resize(w), lv.resize(w)
                    if a.value == b.value and a.xmask == b.xmask:
                        yield from self._exec(item.body, frame)
                        return
        if default is not None:
            yield from self._exec(default.body, frame)

    def _exec_sync(self, stmt: A.Stmt, frame: Frame) -> None:
        """Run a statement that must not suspend (function bodies, comb always)."""
        for _ in self._exec(stmt, frame):
            raise SimulationError("timing control not allowed in this context")

    # -- system tasks -----------------------------------------------------------

    def _sys_task(self, stmt: A.SysTask, frame: Frame) -> None:
        name = stmt.name
        if name in ("$display", "$write", "$monitor"):
            text = self._format(stmt.args, frame)
            if name == "$write":
                if self.output and not self.output[-1].endswith("\n"):
                    self.output[-1] += text
                else:
                    self.output.append(text)
            else:
                self.output.append(text)
        elif name == "$error":
            self.error_count += 1
            self.output.append("ERROR: " + self._format(stmt.args, frame))
        elif name in ("$finish", "$stop"):
            self.finished = True
            raise _Finish()
        else:
            raise SimulationError(f"system task '{name}' not supported")

    def _format(self, args: tuple[A.Expr, ...], frame: Frame) -> str:
        if not args:
            return ""
        if not isinstance(args[0], A.StringLit):
            return " ".join(str(self.eval(a, frame)) for a in args)
        fmt = args[0].text
        values = list(args[1:])
        out: list[str] = []
        i = 0
        while i < len(fmt):
            ch = fmt[i]
            if ch == "%" and i + 1 < len(fmt):
                spec = fmt[i + 1]
                i += 2
                if spec == "%":
                    out.append("%")
                    continue
                if spec == "0" and i < len(fmt):  # %0d
                    spec = fmt[i]
                    i += 1
                if not values:
                    out.append("%" + spec)
                    continue
                val = self.eval(values.pop(0), frame)
                if spec in ("d", "D"):
                    out.append("x" if val.has_x else str(val.to_int()))
                elif spec in ("h", "H", "x", "X"):
                    out.append("x" * ((val.width + 3) // 4) if val.has_x
                               else f"{val.to_int():x}")
                elif spec in ("b", "B"):
                    out.append(str(val)[str(val).find("b") + 1:] if val.has_x
                               else bin(val.to_int())[2:].zfill(val.width))
                elif spec in ("t", "T"):
                    out.append(str(val.to_int()))
                elif spec == "s":
                    raw = val.to_int().to_bytes((val.width + 7) // 8, "big")
                    out.append(raw.lstrip(b"\0").decode(errors="replace"))
                else:
                    out.append(str(val))
            else:
                out.append(ch)
                i += 1
        return "".join(out)

    # -- scheduler ----------------------------------------------------------------

    def _run_comb(self, idx: int) -> None:
        proc = self.design.processes[idx]
        frame = Frame(proc.scope)
        try:
            if proc.kind == "assign":
                assert proc.expr is not None and proc.target is not None
                value = self.eval(proc.expr, frame)
                self._write_lvalue(proc.target, value, frame, nonblocking=False)
            else:
                assert proc.body is not None
                self._exec_sync(proc.body, frame)
        except _Finish:
            pass

    def _start_coroutine(self, proc: Process) -> None:
        assert proc.body is not None
        gen = self._exec(proc.body, Frame(proc.scope))
        self._advance_coroutine(gen, proc)

    def _advance_coroutine(self, gen, proc: Process) -> None:
        try:
            request = next(gen)
        except StopIteration:
            if any(p is proc for p, restart in self._coroutines if restart):
                # Looping always process: restart immediately only if it consumed
                # time; otherwise it would spin forever.
                self._active.append(("restart", proc))
            return
        except _Finish:
            return
        kind, payload = request
        if kind == "delay":
            if payload <= 0:
                self._active.append(("resume", _EdgeWait((), gen, proc)))
            else:
                self._heap_seq += 1
                heapq.heappush(self._heap,
                               (self.time + payload, self._heap_seq, ("resume_gen", gen, proc)))
        elif kind == "edge":
            wait = _EdgeWait(payload, gen, proc)
            for _, sig in payload:
                self._edge_waiters.setdefault(sig, []).append(wait)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown scheduling request '{kind}'")

    def _apply_nba(self) -> None:
        updates = self._nba
        self._nba = []
        self.nba_updates += len(updates)
        for flat, msb, lsb, value in updates:
            if msb is None:
                self._set_signal(flat, value)
            else:
                self._set_signal(flat, self._spliced(flat, msb, lsb, value))

    def run(self, max_time: int = 1_000_000) -> None:
        """Simulate until $finish, event exhaustion, or ``max_time``."""
        try:
            self._run(max_time)
        finally:
            self._publish_telemetry()

    def stats(self) -> dict[str, int]:
        """Scheduler counters accumulated by :meth:`run`."""
        return {"events": self.events_processed,
                "delta_cycles": self.delta_cycles,
                "nba_updates": self.nba_updates,
                "time_slots": self.time_slots,
                "final_time": self.time}

    def _publish_telemetry(self) -> None:
        if not get_tracer().enabled:
            return
        metrics = get_metrics()
        metrics.counter("sim.runs").add(1)
        metrics.counter("sim.events").add(self.events_processed)
        metrics.counter("sim.delta_cycles").add(self.delta_cycles)
        metrics.counter("sim.nba_updates").add(self.nba_updates)
        metrics.counter("sim.time_slots").add(self.time_slots)
        metrics.counter("sim.backend.event.runs").add(1)
        metrics.counter("sim.backend.event.events").add(self.events_processed)

    def _run(self, max_time: int) -> None:
        # Time 0: run all comb processes once, then start coroutines.
        for idx, proc in enumerate(self.design.processes):
            if proc.kind == "assign" or (proc.kind == "always" and not proc.edges
                                         and not self._has_timing(proc.body)):
                self._active.append(("comb", idx))
        for proc, _restart in self._coroutines:
            self._active.append(("start", proc))

        restart_counts: dict[str, int] = {}
        while True:
            self._steps_this_slot = 0
            # Drain current time slot: active queue + NBA strata.
            while self._active or self._nba:
                if self.finished:
                    return
                self.delta_cycles += 1
                while self._active:
                    item = self._active.pop(0)
                    tag = item[0]
                    self.events_processed += 1
                    self._steps_this_slot += 1
                    if self._steps_this_slot > _MAX_STEPS_PER_SLOT:
                        raise SimulationError(
                            f"runaway activity at time {self.time} "
                            f"(combinational loop?)")
                    try:
                        if tag == "comb":
                            self._run_comb(item[1])
                        elif tag == "edge":
                            proc = self.design.processes[item[1]]
                            frame = Frame(proc.scope)
                            assert proc.body is not None
                            try:
                                self._exec_sync(proc.body, frame)
                            except SimulationError as exc:
                                if "timing control" in str(exc):
                                    raise SimulationError(
                                        "delays inside edge-triggered always blocks are "
                                        "not supported") from exc
                                raise
                        elif tag == "start":
                            self._start_coroutine(item[1])
                        elif tag == "restart":
                            proc = item[1]
                            key = proc.name
                            restart_counts[key] = restart_counts.get(key, 0) + 1
                            if restart_counts[key] > _MAX_STEPS_PER_SLOT:
                                raise SimulationError(
                                    f"always process '{proc.name}' loops without "
                                    f"consuming time")
                            self._start_coroutine(proc)
                        elif tag == "resume":
                            wait = item[1]
                            self._advance_coroutine(wait.coroutine, wait.proc)
                    except _Finish:
                        self.finished = True
                        return
                    if self.finished:
                        return
                self._apply_nba()
            # Advance time.
            if not self._heap:
                return
            next_time = self._heap[0][0]
            if next_time > max_time:
                return
            self.time = next_time
            self.time_slots += 1
            restart_counts.clear()
            while self._heap and self._heap[0][0] == self.time:
                _, _, payload = heapq.heappop(self._heap)
                if payload[0] == "resume_gen":
                    _, gen, proc = payload
                    self._active.append(("resume", _EdgeWait((), gen, proc)))

    # -- convenience ---------------------------------------------------------------

    def value_of(self, flat_name: str) -> Logic:
        if flat_name not in self.values:
            raise KeyError(flat_name)
        return self.values[flat_name]
