"""Abstract syntax tree for the mini-Verilog subset.

The node set covers the synthesizable subset the paper's case studies
generate (combinational and clocked always blocks, continuous assigns,
hierarchical instantiation, parameters) plus the behavioural constructs
testbenches need (initial blocks, delays, loops, system tasks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import SourceLocation

# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class Number(Expr):
    width: int
    value: int
    xmask: int = 0
    sized: bool = False


@dataclass(frozen=True)
class Identifier(Expr):
    name: str
    loc: SourceLocation | None = None


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # ~ ! - & | ^ +
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Ternary(Expr):
    cond: Expr
    if_true: Expr
    if_false: Expr


@dataclass(frozen=True)
class Concat(Expr):
    parts: tuple[Expr, ...]


@dataclass(frozen=True)
class Replicate(Expr):
    count: Expr
    inner: Expr


@dataclass(frozen=True)
class Index(Expr):
    """Single-bit select ``sig[i]`` (index may be dynamic)."""

    target: str
    index: Expr
    loc: SourceLocation | None = None


@dataclass(frozen=True)
class Slice(Expr):
    """Constant part select ``sig[msb:lsb]``."""

    target: str
    msb: Expr
    lsb: Expr
    loc: SourceLocation | None = None


@dataclass(frozen=True)
class SystemCall(Expr):
    """System function used in expression position ($time, $random, ...)."""

    name: str
    args: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class FunctionCall(Expr):
    name: str
    args: tuple[Expr, ...]
    loc: SourceLocation | None = None


@dataclass(frozen=True)
class StringLit(Expr):
    text: str


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Stmt:
    pass


@dataclass(frozen=True)
class LValue:
    """Assignment target: whole signal, bit select, or part select."""

    name: str
    index: Expr | None = None       # bit select (may be dynamic)
    msb: Expr | None = None         # part select bounds (constant)
    lsb: Expr | None = None
    loc: SourceLocation | None = None


@dataclass(frozen=True)
class Assign(Stmt):
    target: LValue
    expr: Expr
    blocking: bool
    loc: SourceLocation | None = None


@dataclass(frozen=True)
class Block(Stmt):
    stmts: tuple[Stmt, ...]


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then: Stmt
    other: Stmt | None = None


@dataclass(frozen=True)
class CaseItem:
    # None labels = default arm.
    labels: tuple[Expr, ...] | None
    body: Stmt


@dataclass(frozen=True)
class Case(Stmt):
    subject: Expr
    items: tuple[CaseItem, ...]
    wildcard: bool = False  # casez


@dataclass(frozen=True)
class For(Stmt):
    init: Assign
    cond: Expr
    step: Assign
    body: Stmt


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass(frozen=True)
class Repeat(Stmt):
    count: Expr
    body: Stmt


@dataclass(frozen=True)
class Delay(Stmt):
    amount: Expr
    then: Stmt | None = None


@dataclass(frozen=True)
class EventWait(Stmt):
    """``@(posedge clk)`` used as a statement inside initial blocks."""

    edges: tuple[tuple[str, str], ...]  # (edge-kind, signal); kind in posedge/negedge/any


@dataclass(frozen=True)
class SysTask(Stmt):
    name: str
    args: tuple[Expr, ...] = ()
    loc: SourceLocation | None = None


# --------------------------------------------------------------------------
# Module items
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Range:
    """Vector bounds ``[msb:lsb]`` as constant expressions."""

    msb: Expr
    lsb: Expr


@dataclass(frozen=True)
class Port:
    name: str
    direction: str        # input | output | inout
    rng: Range | None
    is_reg: bool = False
    loc: SourceLocation | None = None


@dataclass(frozen=True)
class Net:
    name: str
    kind: str             # wire | reg | integer
    rng: Range | None
    init: Expr | None = None
    loc: SourceLocation | None = None


@dataclass(frozen=True)
class Parameter:
    name: str
    default: Expr
    local: bool = False


@dataclass(frozen=True)
class ContinuousAssign:
    target: LValue
    expr: Expr
    loc: SourceLocation | None = None


@dataclass(frozen=True)
class Always:
    # Sensitivity: [] means combinational star.
    edges: tuple[tuple[str, str], ...]
    body: Stmt
    loc: SourceLocation | None = None

    @property
    def is_combinational(self) -> bool:
        return all(kind == "any" for kind, _ in self.edges) or not self.edges

    @property
    def is_star(self) -> bool:
        return not self.edges


@dataclass(frozen=True)
class Initial:
    body: Stmt
    loc: SourceLocation | None = None


@dataclass(frozen=True)
class Function:
    name: str
    rng: Range | None
    args: tuple[tuple[str, Range | None], ...]
    locals: tuple[Net, ...]
    body: Stmt


@dataclass(frozen=True)
class Instance:
    module: str
    name: str
    connections: tuple[tuple[str | None, Expr | None], ...]  # (port name or None for positional, expr)
    param_overrides: tuple[tuple[str | None, Expr], ...] = ()
    loc: SourceLocation | None = None


@dataclass(frozen=True)
class Module:
    name: str
    ports: tuple[Port, ...]
    parameters: tuple[Parameter, ...] = ()
    nets: tuple[Net, ...] = ()
    assigns: tuple[ContinuousAssign, ...] = ()
    always_blocks: tuple[Always, ...] = ()
    initial_blocks: tuple[Initial, ...] = ()
    instances: tuple[Instance, ...] = ()
    functions: tuple[Function, ...] = ()
    loc: SourceLocation | None = None

    def port(self, name: str) -> Port:
        for p in self.ports:
            if p.name == name:
                return p
        raise KeyError(name)


@dataclass
class SourceFile:
    modules: dict[str, Module] = field(default_factory=dict)

    def add(self, module: Module) -> None:
        self.modules[module.name] = module
