"""Diagnostics for the mini-Verilog toolchain.

Tool errors are first-class data here: the LLM feedback loops of the paper
(AutoChip, the structured feedback flow, HLS repair) consume compiler and
simulator messages as their training-free "reward" signal, so every raised
error carries a location and a stable machine-readable ``code``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    line: int
    column: int

    def __str__(self) -> str:
        return f"line {self.line}, col {self.column}"


class HdlError(Exception):
    """Base class for all mini-Verilog toolchain errors."""

    code = "HDL000"

    def __init__(self, message: str, loc: SourceLocation | None = None):
        self.message = message
        self.loc = loc
        where = f" ({loc})" if loc else ""
        super().__init__(f"[{self.code}] {message}{where}")


class LexError(HdlError):
    code = "HDL101"


class ParseError(HdlError):
    code = "HDL102"


class ElaborationError(HdlError):
    code = "HDL201"


class SimulationError(HdlError):
    code = "HDL301"


class LintWarning:
    """A non-fatal diagnostic produced by the linter."""

    def __init__(self, code: str, message: str, loc: SourceLocation | None = None):
        self.code = code
        self.message = message
        self.loc = loc

    def __str__(self) -> str:
        where = f" ({self.loc})" if self.loc else ""
        return f"[{self.code}] {self.message}{where}"

    def __repr__(self) -> str:
        return f"LintWarning({self.code!r}, {self.message!r})"
