"""Compiled simulation fast path for elaborated designs.

:func:`compile_program` translates an elaborated :class:`Design` into
straight-line Python source — one function per combinational process, one
per clock-edge process, one generator per behavioural coroutine — operating
on plain ``int`` bit-planes instead of :class:`~repro.hdl.values.Logic`
objects.  :class:`CompiledSim` executes the generated module with exactly
the event simulator's scheduler semantics (active FIFO, NBA stratum,
time-ordered heap), so a run that completes is byte-identical to
:class:`~repro.hdl.simulator.Simulator` on the same design and seed.

Exactness rests on mirroring the value model, not approximating it: every
signal (and every expression temporary) is the pair ``(value, xmask)`` that
:class:`Logic` itself stores, kept in Logic's normal form (``value & xmask
== 0``).  Fully-defined operands take hand-lowered integer fast paths;
operands carrying X bits in the ops with non-trivial X algebra (bitwise,
shifts) are delegated back to :class:`Logic` at runtime (:func:`_xop2`), so
there is no hand-rolled X propagation to diverge.  The engine raises
:class:`XBail` only where the *event* engine would raise an error itself
(X write index, X repeat count, runaway zero-delay activity, …) — the
caller then re-runs the event simulator, which reproduces the
authoritative outcome.

Designs using constructs the compiler does not model (dynamic delays or
part-select bounds, user functions, timing controls inside edge-triggered
blocks) are rejected at compile time with :class:`UnsupportedDesign` — the
selector in ``run_testbench`` records the design as ineligible and keeps
using the event engine for it.
"""

from __future__ import annotations

import heapq
from collections import deque

from . import ast as A
from ..obs import get_metrics, get_tracer
from .elaborate import Design, Process, Scope, eval_const
from .errors import ElaborationError
from .simulator import Simulator
from .values import Logic


class UnsupportedDesign(Exception):
    """Design uses a construct outside the compiled subset."""


class XBail(Exception):
    """Runtime escape hatch: the event engine would raise an error here
    (SimulationError or ValueError).  The caller re-runs the event
    simulator to reproduce the authoritative outcome."""


class _CFinish(Exception):
    """$finish/$stop unwind inside generated code."""


_MAX_STEPS = 200_000        # mirrors simulator._MAX_STEPS_PER_SLOT
_MAX_WIDTH = 1 << 16        # refuse absurd widths instead of building them

_EDGE_KIND = {"posedge": 0, "negedge": 1, "any": 2}


# --------------------------------------------------------------------------
# Runtime helpers injected into the generated module's namespace
# --------------------------------------------------------------------------


def _xop2(method: str, wa: int, av: int, ax: int,
          wb: int, bv: int, bx: int) -> tuple[int, int]:
    """Evaluate a binary :class:`Logic` op with an X operand by delegating
    to the reference implementation (keeps partial-X semantics
    definitionally identical to the event engine's)."""
    r = getattr(Logic(wa, av, ax), method)(Logic(wb, bv, bx))
    return r.value, r.xmask


def _splice(ov: int, ox: int, ws: int, lsb: int, wp: int,
            pv: int, px: int) -> tuple[int, int]:
    """Write part ``(pv, px)`` of width ``wp`` at ``lsb`` into ``(ov, ox)``.

    Mirrors ``Simulator._spliced`` plane-wise; bits past the signal width
    are dropped up front, matching Logic's constructor normalisation.
    """
    if lsb >= ws or wp <= 0:
        return ov, ox
    if wp > ws - lsb:
        wp = ws - lsb
    mp = (1 << wp) - 1
    m = mp << lsb
    nx = (ox & ~m) | ((px & mp) << lsb)
    nv = ((ov & ~m) | ((pv & mp) << lsb)) & ~nx
    return nv, nx


def _fmt_s(v: int, w: int) -> str:
    return v.to_bytes((w + 7) // 8, "big").lstrip(b"\0").decode(
        errors="replace")


def _fmt_b(v: int, x: int, w: int) -> str:
    if not x:
        return bin(v)[2:].zfill(w)
    s = str(Logic(w, v, x))
    return s[s.find("b") + 1:]


def _lstr(v: int, x: int, w: int) -> str:
    return str(Logic(w, v, x))


_RUNTIME_GLOBALS = {
    "XBail": XBail, "_CFinish": _CFinish, "_xop2": _xop2,
    "_splice": _splice, "_fmt_s": _fmt_s, "_fmt_b": _fmt_b, "_lstr": _lstr,
}


# --------------------------------------------------------------------------
# Code generation
# --------------------------------------------------------------------------


def _chkw(width: int) -> int:
    if width <= 0 or width > _MAX_WIDTH:
        raise UnsupportedDesign(f"expression width {width} out of range")
    return width


class _FnEmitter:
    """Lowers one process body into Python source lines.

    Expressions are lowered in A-normal form: every sub-expression is
    materialised *in the event engine's evaluation order*, so side effects
    ($random, short-circuit skips, lazy $display args) land identically.
    A lowered triple ``(v, x, w)`` holds the value-plane expression, the
    xmask-plane expression (the literal ``"0"`` when statically defined),
    and the static width.
    """

    def __init__(self, compiler: "_Compiler", scope: Scope, coroutine: bool):
        self.c = compiler
        self.scope = scope
        self.coroutine = coroutine
        self.lines: list[str] = []
        self.indent = 1
        self._n = 0

    def w(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def temp(self) -> str:
        self._n += 1
        return f"t{self._n}"

    # -- name resolution ----------------------------------------------------

    def _sig(self, name: str) -> int:
        if name.startswith("\0"):
            flat = name[1:]
        else:
            try:
                flat = self.scope.resolve(name)
            except ElaborationError as exc:
                raise UnsupportedDesign(str(exc)) from exc
        idx = self.c.sigidx.get(flat)
        if idx is None:
            raise UnsupportedDesign(f"unknown signal '{flat}'")
        return idx

    # -- expression lowering -------------------------------------------------

    def lower(self, expr: A.Expr) -> tuple[str, str, int]:
        if isinstance(expr, A.Number):
            w = _chkw(expr.width)
            m = (1 << w) - 1
            xm = expr.xmask & m
            return str(expr.value & m & ~xm), str(xm) if xm else "0", w
        if isinstance(expr, A.StringLit):
            data = expr.text.encode()
            width = _chkw(max(8, len(data) * 8))
            return str(int.from_bytes(data, "big") if data else 0), "0", width
        if isinstance(expr, A.Identifier):
            return self._name(expr.name)
        if isinstance(expr, A.Unary):
            return self._unary(expr)
        if isinstance(expr, A.Binary):
            return self._binary(expr)
        if isinstance(expr, A.Ternary):
            return self._ternary(expr)
        if isinstance(expr, A.Concat):
            return self._concat(expr)
        if isinstance(expr, A.Replicate):
            return self._replicate(expr)
        if isinstance(expr, A.Index):
            return self._index(expr)
        if isinstance(expr, A.Slice):
            return self._slice(expr)
        if isinstance(expr, A.SystemCall):
            return self._syscall(expr)
        raise UnsupportedDesign(
            f"cannot compile {type(expr).__name__} expression")

    def _name(self, name: str) -> tuple[str, str, int]:
        if name in self.scope.params:
            return str(self.scope.params[name] & 0xFFFFFFFF), "0", 32
        i = self._sig(name)
        return f"V[{i}]", f"X[{i}]", self.c.widths[i]

    def _unary(self, expr: A.Unary) -> tuple[str, str, int]:
        v, x, w = self.lower(expr.operand)
        m = (1 << w) - 1
        t = self.temp()
        if expr.op == "+":
            return v, x, w
        if expr.op == "~":
            # Logic.not_: flip value bits, X bits stay X with value 0.
            if x == "0":
                self.w(f"{t} = ~{v} & {m}")
            else:
                self.w(f"{t} = ~{v} & {m} & ~{x}")
            return t, x, w
        if expr.op == "-":
            if x == "0":
                self.w(f"{t} = -{v} & {m}")
                return t, "0", w
            tx = self.temp()
            self.w(f"if {x}:")
            self.w(f"    {t} = 0")
            self.w(f"    {tx} = {m}")
            self.w("else:")
            self.w(f"    {t} = -{v} & {m}")
            self.w(f"    {tx} = 0")
            return t, tx, w
        if expr.op == "&":          # reduce_and
            if x == "0":
                self.w(f"{t} = 1 if {v} == {m} else 0")
                return t, "0", 1
            tx = self.temp()
            self.w(f"if ({v} | {x}) != {m}:")
            self.w(f"    {t} = 0")
            self.w(f"    {tx} = 0")
            self.w(f"elif {x}:")
            self.w(f"    {t} = 0")
            self.w(f"    {tx} = 1")
            self.w("else:")
            self.w(f"    {t} = 1")
            self.w(f"    {tx} = 0")
            return t, tx, 1
        if expr.op == "|":          # reduce_or
            if x == "0":
                self.w(f"{t} = 1 if {v} else 0")
                return t, "0", 1
            tx = self.temp()
            self.w(f"if {v}:")
            self.w(f"    {t} = 1")
            self.w(f"    {tx} = 0")
            self.w(f"elif {x}:")
            self.w(f"    {t} = 0")
            self.w(f"    {tx} = 1")
            self.w("else:")
            self.w(f"    {t} = 0")
            self.w(f"    {tx} = 0")
            return t, tx, 1
        if expr.op == "^":          # reduce_xor
            if x == "0":
                self.w(f"{t} = ({v}).bit_count() & 1")
                return t, "0", 1
            tx = self.temp()
            self.w(f"if {x}:")
            self.w(f"    {t} = 0")
            self.w(f"    {tx} = 1")
            self.w("else:")
            self.w(f"    {t} = ({v}).bit_count() & 1")
            self.w(f"    {tx} = 0")
            return t, tx, 1
        if expr.op == "!":          # logical_not
            if x == "0":
                self.w(f"{t} = 0 if {v} else 1")
                return t, "0", 1
            tx = self.temp()
            self.w(f"if {v}:")
            self.w(f"    {t} = 0")
            self.w(f"    {tx} = 0")
            self.w(f"elif {x}:")
            self.w(f"    {t} = 0")
            self.w(f"    {tx} = 1")
            self.w("else:")
            self.w(f"    {t} = 1")
            self.w(f"    {tx} = 0")
            return t, tx, 1
        raise UnsupportedDesign(f"unary '{expr.op}' not compiled")

    def _binary(self, expr: A.Binary) -> tuple[str, str, int]:
        op = expr.op
        if op in ("&&", "||"):
            return self._logical(expr, op == "&&")
        av, ax, wa = self.lower(expr.left)
        bv, bx, wb = self.lower(expr.right)
        t = self.temp()
        defined = ax == "0" and bx == "0"
        if ax == "0":
            anyx = bx
        elif bx == "0":
            anyx = ax
        else:
            anyx = f"{ax} or {bx}"
        if op in ("+", "-", "*", "**"):
            if op in ("+", "-"):
                w = _chkw(max(wa, wb) + 1)
            elif op == "*":
                w = _chkw(min(128, wa + wb))
            else:
                w = max(wa, wb)
            m = (1 << w) - 1
            if op == "**":
                core = f"pow({av}, {bv}, {1 << w})"
            else:
                core = f"({av} {op} {bv}) & {m}"
            if defined:
                self.w(f"{t} = {core}")
                return t, "0", w
            tx = self.temp()
            self.w(f"if {anyx}:")
            self.w(f"    {t} = 0")
            self.w(f"    {tx} = {m}")
            self.w("else:")
            self.w(f"    {t} = {core}")
            self.w(f"    {tx} = 0")
            return t, tx, w
        if op in ("/", "%"):
            w = max(wa, wb)
            m = (1 << w) - 1
            pyop = "//" if op == "/" else "%"
            tx = self.temp()
            bad = f"not {bv}" if defined else f"({anyx}) or not {bv}"
            self.w(f"if {bad}:")
            self.w(f"    {t} = 0")
            self.w(f"    {tx} = {m}")
            self.w("else:")
            self.w(f"    {t} = {av} {pyop} {bv}")
            self.w(f"    {tx} = 0")
            return t, tx, w
        if op in ("==", "!=", "<", "<=", ">", ">="):
            core = f"1 if {av} {op} {bv} else 0"
            if defined:
                self.w(f"{t} = {core}")
                return t, "0", 1
            tx = self.temp()
            self.w(f"if {anyx}:")
            self.w(f"    {t} = 0")
            self.w(f"    {tx} = 1")
            self.w("else:")
            self.w(f"    {t} = {core}")
            self.w(f"    {tx} = 0")
            return t, tx, 1
        if op in ("&", "|", "^"):
            w = max(wa, wb)
            if defined:
                self.w(f"{t} = {av} {op} {bv}")
                return t, "0", w
            meth = {"&": "and_", "|": "or_", "^": "xor"}[op]
            tx = self.temp()
            self.w(f"if {anyx}:")
            self.w(f"    {t}, {tx} = _xop2('{meth}', {wa}, {av}, {ax}, "
                   f"{wb}, {bv}, {bx})")
            self.w("else:")
            self.w(f"    {t} = {av} {op} {bv}")
            self.w(f"    {tx} = 0")
            return t, tx, w
        if op in ("<<", ">>"):
            if op == "<<":
                core = (f"({av} << {bv}) & {(1 << wa) - 1} "
                        f"if {bv} < {wa} else 0")
                meth = "shl"
            else:
                core = f"{av} >> {bv}"
                meth = "shr"
            if defined:
                self.w(f"{t} = {core}")
                return t, "0", wa
            tx = self.temp()
            self.w(f"if {anyx}:")
            self.w(f"    {t}, {tx} = _xop2('{meth}', {wa}, {av}, {ax}, "
                   f"{wb}, {bv}, {bx})")
            self.w("else:")
            self.w(f"    {t} = {core}")
            self.w(f"    {tx} = 0")
            return t, tx, wa
        raise UnsupportedDesign(f"binary '{op}' not compiled")

    def _logical(self, expr: A.Binary, is_and: bool) -> tuple[str, str, int]:
        av, ax, _ = self.lower(expr.left)
        t, tx = self.temp(), self.temp()
        # The right operand lowers *inside* the else branch, mirroring the
        # event engine's short-circuit (a skipped $random stays skipped).
        if is_and:
            guard = f"not {av}" if ax == "0" else f"not {av} and not {ax}"
            self.w(f"if {guard}:")      # a.is_false()
            self.w(f"    {t} = 0")
            self.w(f"    {tx} = 0")
        else:
            self.w(f"if {av}:")         # a.is_true()
            self.w(f"    {t} = 1")
            self.w(f"    {tx} = 0")
        self.w("else:")
        self.indent += 1
        bv, bx, _ = self.lower(expr.right)
        if is_and:
            bfalse = f"not {bv}" if bx == "0" else f"not {bv} and not {bx}"
            self.w(f"if {bfalse}:")     # b.is_false()
            self.w(f"    {t} = 0")
            self.w(f"    {tx} = 0")
        else:
            self.w(f"if {bv}:")         # b.is_true()
            self.w(f"    {t} = 1")
            self.w(f"    {tx} = 0")
        if ax == "0" and bx == "0":
            self.w("else:")
            self.w(f"    {t} = {1 if is_and else 0}")
            self.w(f"    {tx} = 0")
        else:
            self.w(f"elif {ax if bx == '0' else (bx if ax == '0' else ax + ' or ' + bx)}:")
            self.w(f"    {t} = 0")
            self.w(f"    {tx} = 1")
            self.w("else:")
            self.w(f"    {t} = {1 if is_and else 0}")
            self.w(f"    {tx} = 0")
        self.indent -= 1
        return t, tx, 1

    def _ternary(self, expr: A.Ternary) -> tuple[str, str, int]:
        # The event engine evaluates all three operands unconditionally,
        # then resizes the taken arm to the wider branch width (resize is
        # plane-preserving, so no extra code is needed here).
        cv, cx, _ = self.lower(expr.cond)
        v1, x1, w1 = self.lower(expr.if_true)
        v2, x2, w2 = self.lower(expr.if_false)
        w = max(w1, w2)
        m1, m2 = (1 << w1) - 1, (1 << w2) - 1
        t, tx = self.temp(), self.temp()
        self.w(f"if {cv}:")             # cond.is_true()
        self.w(f"    {t} = {v1}")
        self.w(f"    {tx} = {x1}")
        if cx == "0":
            self.w("else:")
            self.w(f"    {t} = {v2}")
            self.w(f"    {tx} = {x2}")
        else:
            self.w(f"elif not {cx}:")   # cond.is_false()
            self.w(f"    {t} = {v2}")
            self.w(f"    {tx} = {x2}")
            self.w("else:")
            self.w(f"    {t} = 0")
            self.w(f"    {tx} = {(1 << w) - 1}")
        return t, tx, w

    def _concat(self, expr: A.Concat) -> tuple[str, str, int]:
        parts = [self.lower(p) for p in expr.parts]
        if not parts:
            raise UnsupportedDesign("empty concatenation")
        w = _chkw(sum(pw for _, _, pw in parts))
        off = w
        vp, xp = [], []
        for pv, px, pw in parts:
            off -= pw
            vp.append(f"({pv} << {off})" if off else f"({pv})")
            if px != "0":
                xp.append(f"({px} << {off})" if off else f"({px})")
        t = self.temp()
        self.w(f"{t} = {' | '.join(vp)}")
        if not xp:
            return t, "0", w
        tx = self.temp()
        self.w(f"{tx} = {' | '.join(xp)}")
        return t, tx, w

    def _replicate(self, expr: A.Replicate) -> tuple[str, str, int]:
        # The event engine evaluates the count dynamically; restricting to
        # elaboration-time constants keeps the generated code straight-line
        # (dynamic counts fall back to the event engine).
        try:
            n = eval_const(expr.count, self.scope.params)
        except ElaborationError as exc:
            raise UnsupportedDesign(
                f"non-constant replication count: {exc}") from exc
        iv, ix, wi = self.lower(expr.inner)
        if n <= 0:
            # Logic.replicate raises ValueError here; reproduce via fallback.
            self.w("raise XBail('non-positive replication count')")
            return "0", "0", 1
        w = _chkw(wi * n)
        factor = ((1 << w) - 1) // ((1 << wi) - 1)
        t = self.temp()
        self.w(f"{t} = {iv} * {factor}")
        if ix == "0":
            return t, "0", w
        tx = self.temp()
        self.w(f"{tx} = {ix} * {factor}")
        return t, tx, w

    def _index(self, expr: A.Index) -> tuple[str, str, int]:
        bv, bx, wb = self._name(expr.target)
        iv, ix, _ = self.lower(expr.index)
        t, tx = self.temp(), self.temp()
        if ix == "0":
            self.w(f"if {iv} < {wb}:")
        else:
            self.w(f"if not {ix} and {iv} < {wb}:")
        self.w(f"    {t} = {bv} >> {iv} & 1")
        if bx == "0":
            self.w(f"    {tx} = 0")
        else:
            self.w(f"    {tx} = {bx} >> {iv} & 1")
        self.w("else:")                 # X index or out of range: unknown(1)
        self.w(f"    {t} = 0")
        self.w(f"    {tx} = 1")
        return t, tx, 1

    def _slice(self, expr: A.Slice) -> tuple[str, str, int]:
        # The event engine evaluates bounds dynamically (an X bound is a
        # SimulationError); constants cover the synthesizable subset and
        # anything else falls back.
        try:
            msb = eval_const(expr.msb, self.scope.params)
            lsb = eval_const(expr.lsb, self.scope.params)
        except ElaborationError as exc:
            raise UnsupportedDesign(
                f"non-constant part-select bound: {exc}") from exc
        if msb < lsb:
            msb, lsb = lsb, msb
        w = _chkw(msb - lsb + 1)
        m = (1 << w) - 1
        bv, bx, wb = self._name(expr.target)
        if lsb >= wb:
            return "0", str(m), w      # Logic.slice: unknown(width)
        t = self.temp()
        if lsb == 0 and wb <= w:
            self.w(f"{t} = {bv}")
        else:
            self.w(f"{t} = {bv} >> {lsb} & {m}")
        if bx == "0":
            return t, "0", w
        tx = self.temp()
        self.w(f"{tx} = {bx} >> {lsb} & {m}")
        return t, tx, w

    def _syscall(self, expr: A.SystemCall) -> tuple[str, str, int]:
        if expr.name == "$time":
            return "S.time", "0", 64
        if expr.name == "$random":
            t = self.temp()
            self.w("S.rand = (S.rand * 1103515245 + 12345) & 4294967295")
            self.w(f"{t} = S.rand")
            return t, "0", 32
        if expr.name in ("$signed", "$unsigned") and len(expr.args) == 1:
            return self.lower(expr.args[0])
        raise UnsupportedDesign(
            f"system function '{expr.name}' not compiled")

    # -- lvalue writes -------------------------------------------------------

    def _store(self, i: int, nv: str, nx: str) -> None:
        if i in self.c.watched:
            self.w(f"S.set({i}, {nv}, {nx})")
        else:
            self.w(f"V[{i}] = {nv}")
            self.w(f"X[{i}] = {nx}")

    def write_lvalue(self, target: A.LValue, tv: str, tx: str, wv: int,
                     blocking: bool) -> None:
        i = self._sig(target.name)
        ws = self.c.widths[i]
        ms = (1 << ws) - 1
        if target.index is None and target.msb is None:
            if wv > ws:                 # resize truncates both planes
                nv = self.temp()
                self.w(f"{nv} = {tv} & {ms}")
                if tx == "0":
                    nx = "0"
                else:
                    nx = self.temp()
                    self.w(f"{nx} = {tx} & {ms}")
            else:                       # zero-extension: planes unchanged
                nv, nx = tv, tx
            if blocking:
                self._store(i, nv, nx)
            else:
                self.w(f"S.nba.append(({i}, None, 0, {nv}, {nx}, {ws}))")
            return
        if target.index is not None:
            iv, ix, _ = self.lower(target.index)
            if ix != "0":
                self.w(f"if {ix}:")     # event: SimulationError on X index
                self.w("    raise XBail('write with X index')")
            pv = f"{tv} & 1"
            px = "0" if tx == "0" else f"{tx} & 1"
            if blocking:
                nv, nx = self.temp(), self.temp()
                self.w(f"{nv}, {nx} = _splice(V[{i}], X[{i}], {ws}, {iv}, "
                       f"1, {pv}, {px})")
                self._store(i, nv, nx)
            else:
                self.w(f"S.nba.append(({i}, {iv}, {iv}, {pv}, {px}, 1))")
            return
        # Part select: the event engine reads bounds with .to_int() (X
        # bits read as 0 — no error), and swaps when reversed.
        mvv, _, _ = self.lower(target.msb)
        lvv, _, _ = self.lower(target.lsb)
        mv, lv, wp = self.temp(), self.temp(), self.temp()
        self.w(f"{mv}, {lv} = ({mvv}, {lvv}) if {mvv} >= {lvv} "
               f"else ({lvv}, {mvv})")
        self.w(f"{wp} = {mv} - {lv} + 1")
        if blocking:
            nv, nx = self.temp(), self.temp()
            self.w(f"{nv}, {nx} = _splice(V[{i}], X[{i}], {ws}, {lv}, {wp}, "
                   f"{tv}, {tx})")
            self._store(i, nv, nx)
        else:
            # _splice masks to the part width at apply time, so the
            # enqueue-time resize of the event engine needs no extra code.
            self.w(f"S.nba.append(({i}, {mv}, {lv}, {tv}, {tx}, {wp}))")

    # -- statements ----------------------------------------------------------

    def stmt(self, s: A.Stmt) -> None:
        # Mirror Simulator._exec: one step per statement, *including* Block
        # wrappers, charged before the statement runs.
        self.w("S.st += 1")
        if isinstance(s, A.Assign):
            tv, tx, wv = self.lower(s.expr)
            self.write_lvalue(s.target, tv, tx, wv, blocking=s.blocking)
        elif isinstance(s, A.Block):
            for sub in s.stmts:
                self.stmt(sub)
        elif isinstance(s, A.If):
            cv, _, _ = self.lower(s.cond)
            self.w(f"if {cv}:")         # is_true(); an X condition takes else
            self.indent += 1
            self.stmt(s.then)
            self.indent -= 1
            if s.other is not None:
                self.w("else:")
                self.indent += 1
                self.stmt(s.other)
                self.indent -= 1
        elif isinstance(s, A.Case):
            self._case(s)
        elif isinstance(s, A.For):
            self.stmt(s.init)
            self.w("while True:")
            self.indent += 1
            self.w(f"if S.st > {_MAX_STEPS}:")
            self.w("    raise XBail('runaway loop')")
            cv, _, _ = self.lower(s.cond)
            self.w(f"if not {cv}:")
            self.w("    break")
            self.stmt(s.body)
            self.stmt(s.step)
            self.indent -= 1
        elif isinstance(s, A.While):
            self.w("while True:")
            self.indent += 1
            self.w(f"if S.st > {_MAX_STEPS}:")
            self.w("    raise XBail('runaway loop')")
            cv, _, _ = self.lower(s.cond)
            self.w(f"if not {cv}:")
            self.w("    break")
            self.stmt(s.body)
            self.indent -= 1
        elif isinstance(s, A.Repeat):
            cv, cx, _ = self.lower(s.count)
            if cx != "0":
                self.w(f"if {cx}:")     # event: SimulationError on X count
                self.w("    raise XBail('repeat count is X')")
            self.w(f"for _ in range({cv}):")
            self.indent += 1
            self.w(f"if S.st > {_MAX_STEPS}:")
            self.w("    raise XBail('runaway loop')")
            self.stmt(s.body)
            self.indent -= 1
        elif isinstance(s, A.Delay):
            if not self.coroutine:
                raise UnsupportedDesign("timing control in a synchronous body")
            self.w(f"yield (0, {self._delay_amount(s.amount)})")
            if s.then is not None:
                self.stmt(s.then)
        elif isinstance(s, A.EventWait):
            if not self.coroutine:
                raise UnsupportedDesign("timing control in a synchronous body")
            edges = tuple((_EDGE_KIND[k], self._sig(sig))
                          for k, sig in s.edges)
            self.w(f"yield (1, {edges!r})")
        elif isinstance(s, A.SysTask):
            self._systask(s)
        else:
            raise UnsupportedDesign(
                f"cannot compile {type(s).__name__} statement")

    def _delay_amount(self, amount: A.Expr) -> int:
        # Only plain defined literals and parameters: the event engine
        # evaluates delays dynamically as bit vectors, which eval_const
        # would not reproduce for arbitrary expressions.
        if isinstance(amount, A.Number) and amount.xmask == 0:
            return amount.value
        if isinstance(amount, A.Identifier) \
                and amount.name in self.scope.params:
            return self.scope.params[amount.name] & 0xFFFFFFFF
        raise UnsupportedDesign("dynamic delay amount")

    def _case(self, s: A.Case) -> None:
        sv, sx, ws = self.lower(s.subject)
        # Pin the subject in temps: label lowering may clobber V/X via
        # $random-free reads only, but keeping temps mirrors the event
        # engine's single evaluation of the subject.
        tsv, tsx = self.temp(), self.temp()
        self.w(f"{tsv} = {sv}")
        self.w(f"{tsx} = {sx}")
        default: A.CaseItem | None = None
        self.w("while True:")
        self.indent += 1
        for item in s.items:
            if item.labels is None:
                default = item      # last default wins, as in the event engine
                continue
            m = self.temp()
            self.w(f"{m} = 0")
            first = True
            for label in item.labels:
                if not first:
                    self.w(f"if not {m}:")
                    self.indent += 1
                self._case_label(s, label, tsv, tsx, ws, m)
                if not first:
                    self.indent -= 1
                first = False
            self.w(f"if {m}:")
            self.indent += 1
            self.stmt(item.body)
            self.w("break")
            self.indent -= 1
        if default is not None:
            self.stmt(default.body)
        self.w("break")
        self.indent -= 1

    def _case_label(self, s: A.Case, label: A.Expr, sv: str, sx: str,
                    ws: int, m: str) -> None:
        """Emit ``m = 1`` when the label matches.  Labels evaluate lazily —
        only reached when previous labels missed — mirroring
        ``Simulator._exec_case``'s first-match walk."""
        lv, lx, wl = self.lower(label)
        w = max(ws, wl)
        full = (1 << w) - 1
        if s.wildcard:
            # casez: label X bits are wildcards.
            if lx == "0":
                cond = f"{sv} == {lv} and not {sx}"
            else:
                care = self.temp()
                self.w(f"{care} = {full} & ~{lx}")
                cond = (f"{sv} & {care} == {lv} & {care} "
                        f"and not {sx} & {care}")
        else:
            cond = f"{sv} == {lv} and {sx} == {lx}"
        self.w(f"if {cond}:")
        self.w(f"    {m} = 1")

    # -- system tasks --------------------------------------------------------

    def _systask(self, s: A.SysTask) -> None:
        name = s.name
        if name in ("$finish", "$stop"):
            self.w("S.finished = True")
            self.w("raise _CFinish()")
            return
        if name not in ("$display", "$write", "$monitor", "$error"):
            raise UnsupportedDesign(f"system task '{name}' not compiled")
        text = self._format(s.args)
        if name == "$write":
            self.w(f"S.write({text})")
        elif name == "$error":
            self.w("S.error_count += 1")
            self.w(f"S.output.append('ERROR: ' + {text})")
        else:
            self.w(f"S.output.append({text})")

    def _format(self, args: tuple[A.Expr, ...]) -> str:
        """Build the $display text expression, consuming args in exactly
        the event engine's order (unconsumed args never evaluate)."""
        if not args:
            return "''"
        if not isinstance(args[0], A.StringLit):
            rendered = []
            for a in args:
                v, x, w = self.lower(a)
                rendered.append(f"_lstr({v}, {x}, {w})")
            return " + ' ' + ".join(rendered)
        fmt = args[0].text
        values = list(args[1:])
        pieces: list[str] = []
        lit: list[str] = []
        i = 0
        while i < len(fmt):
            ch = fmt[i]
            if ch == "%" and i + 1 < len(fmt):
                spec = fmt[i + 1]
                i += 2
                if spec == "%":
                    lit.append("%")
                    continue
                if spec == "0" and i < len(fmt):   # %0d
                    spec = fmt[i]
                    i += 1
                if not values:
                    lit.append("%" + spec)
                    continue
                if lit:
                    pieces.append(repr("".join(lit)))
                    lit = []
                v, x, w = self.lower(values.pop(0))
                if spec in ("d", "D"):
                    pieces.append(f"str({v})" if x == "0"
                                  else f"('x' if {x} else str({v}))")
                elif spec in ("h", "H", "x", "X"):
                    xs = repr("x" * ((w + 3) // 4))
                    pieces.append(f"format({v}, 'x')" if x == "0"
                                  else f"({xs} if {x} else format({v}, 'x'))")
                elif spec in ("b", "B"):
                    pieces.append(f"format({v}, 'b').zfill({w})" if x == "0"
                                  else f"_fmt_b({v}, {x}, {w})")
                elif spec in ("t", "T"):
                    pieces.append(f"str({v})")
                elif spec == "s":
                    pieces.append(f"_fmt_s({v}, {w})")
                else:
                    pieces.append(f"_lstr({v}, {x}, {w})")
            else:
                lit.append(ch)
                i += 1
        if lit or not pieces:
            pieces.append(repr("".join(lit)))
        return " + ".join(pieces)


# --------------------------------------------------------------------------
# Whole-design compiler
# --------------------------------------------------------------------------


class _Compiler:
    def __init__(self, design: Design):
        self.design = design
        self.sigidx: dict[str, int] = {}
        self.widths: list[int] = []
        names: list[str] = []
        v0: list[int] = []
        x0: list[int] = []
        for flat, sig in design.signals.items():
            if sig.width <= 0 or sig.width > _MAX_WIDTH:
                raise UnsupportedDesign(
                    f"signal '{flat}' width {sig.width} out of range")
            self.sigidx[flat] = len(names)
            names.append(flat)
            self.widths.append(sig.width)
            init = sig.init if sig.init is not None \
                else Logic(sig.width, 0, 0)
            v0.append(init.value)
            x0.append(init.xmask)
        self.names = tuple(names)
        self.v0 = tuple(v0)
        self.x0 = tuple(x0)
        self.watched: set[int] = set()

    def _is_comb(self, proc: Process) -> bool:
        return proc.kind == "assign" or (
            proc.kind == "always" and not proc.edges
            and not Simulator._has_timing(proc.body))

    def compile(self) -> "CompiledProgram":
        design = self.design
        comb: list[Process] = []
        edge: list[Process] = []
        coro: list[tuple[Process, bool]] = []
        comb_watch: dict[int, list[int]] = {}
        edge_watch: dict[int, list[tuple[int, int]]] = {}
        for proc in design.processes:
            if self._is_comb(proc):
                cid = len(comb)
                comb.append(proc)
                for dep in proc.deps:
                    idx = self.sigidx.get(dep)
                    if idx is not None:
                        comb_watch.setdefault(idx, []).append(cid)
            elif proc.kind == "always" and proc.edges:
                if Simulator._has_timing(proc.body):
                    # The event engine errors only if the edge ever fires;
                    # falling back reproduces either outcome.
                    raise UnsupportedDesign(
                        "timing control inside an edge-triggered always block")
                eid = len(edge)
                edge.append(proc)
                for kind, sig in proc.edges:
                    idx = self.sigidx.get(sig)
                    if idx is None:
                        raise UnsupportedDesign(f"unknown edge signal '{sig}'")
                    edge_watch.setdefault(idx, []).append(
                        (_EDGE_KIND[kind], eid))
            else:                   # looping always / initial coroutine
                coro.append((proc, proc.kind == "always"))
        # Time-0 tokens: all comb processes in design order, then coroutine
        # starts in design order — the event scheduler's exact seeding.
        t0 = [(0, cid) for cid in range(len(comb))]
        t0 += [(2, ci) for ci in range(len(coro))]

        self.watched = set(comb_watch) | set(edge_watch)
        self.watched |= self._eventwait_signals(coro)

        chunks: list[str] = []
        for cid, proc in enumerate(comb):
            chunks.append(self._comb_fn(cid, proc))
        for eid, proc in enumerate(edge):
            chunks.append(self._edge_fn(eid, proc))
        for ci, (proc, _restart) in enumerate(coro):
            chunks.append(self._coro_fn(ci, proc))
        chunks.append(
            "COMB = (%s)" % "".join(f"p{i}, " for i in range(len(comb))))
        chunks.append(
            "EDGE = (%s)" % "".join(f"e{i}, " for i in range(len(edge))))
        chunks.append(
            "CORO = (%s)" % "".join(f"c{i}, " for i in range(len(coro))))
        source = "\n".join(chunks) + "\n"
        meta = {
            "names": self.names,
            "widths": tuple(self.widths),
            "v0": self.v0,
            "x0": self.x0,
            "t0": tuple(t0),
            "comb_watch": {i: tuple(v) for i, v in comb_watch.items()},
            "edge_watch": {i: tuple(v) for i, v in edge_watch.items()},
            "restartable": tuple(restart for _, restart in coro),
            "coro_names": tuple(proc.name for proc, _ in coro),
            "top": design.top,
        }
        return CompiledProgram(source, meta)

    def _eventwait_signals(self, coro) -> set[int]:
        """Signals any coroutine can wait on — their writers must notify."""
        out: set[int] = set()

        def walk(stmt: A.Stmt | None, scope: Scope) -> None:
            if stmt is None:
                return
            if isinstance(stmt, A.EventWait):
                for _, sig in stmt.edges:
                    try:
                        flat = sig[1:] if sig.startswith("\0") \
                            else scope.resolve(sig)
                    except ElaborationError as exc:
                        raise UnsupportedDesign(str(exc)) from exc
                    idx = self.sigidx.get(flat)
                    if idx is not None:
                        out.add(idx)
            elif isinstance(stmt, A.Block):
                for s in stmt.stmts:
                    walk(s, scope)
            elif isinstance(stmt, A.If):
                walk(stmt.then, scope)
                walk(stmt.other, scope)
            elif isinstance(stmt, A.Case):
                for item in stmt.items:
                    walk(item.body, scope)
            elif isinstance(stmt, (A.For, A.While, A.Repeat)):
                walk(stmt.body, scope)
            elif isinstance(stmt, A.Delay):
                walk(stmt.then, scope)

        for proc, _restart in coro:
            walk(proc.body, proc.scope)
        return out

    def _comb_fn(self, cid: int, proc: Process) -> str:
        em = _FnEmitter(self, proc.scope, coroutine=False)
        if proc.kind == "assign":
            # Simulator._run_comb evaluates assign processes without
            # charging per-statement steps, so no S.st here.
            assert proc.expr is not None and proc.target is not None
            tv, tx, wv = em.lower(proc.expr)
            em.write_lvalue(proc.target, tv, tx, wv, blocking=True)
        else:
            assert proc.body is not None
            em.stmt(proc.body)
        body = "\n".join(em.lines) or "    pass"
        return f"def p{cid}(S, V, X):\n{body}\n"

    def _edge_fn(self, eid: int, proc: Process) -> str:
        em = _FnEmitter(self, proc.scope, coroutine=False)
        assert proc.body is not None
        em.stmt(proc.body)
        body = "\n".join(em.lines) or "    pass"
        return f"def e{eid}(S, V, X):\n{body}\n"

    def _coro_fn(self, ci: int, proc: Process) -> str:
        em = _FnEmitter(self, proc.scope, coroutine=True)
        assert proc.body is not None
        em.stmt(proc.body)
        body = "\n".join(em.lines)
        return (f"def c{ci}(S, V, X):\n"
                f"    if False:\n        yield None\n{body}\n")


def compile_program(design: Design) -> "CompiledProgram":
    """Compile an elaborated design for :class:`CompiledSim`.

    Raises :class:`UnsupportedDesign` when the design falls outside the
    compiled subset; the caller should use the event engine instead.
    """
    try:
        return _Compiler(design).compile()
    except RecursionError as exc:   # pathologically deep expressions
        raise UnsupportedDesign("expression nesting too deep") from exc


class CompiledProgram:
    """Generated source plus scheduler metadata; pickles without the
    exec'd namespace (rebuilt lazily by :meth:`load`)."""

    __slots__ = ("source", "meta", "_ns")

    def __init__(self, source: str, meta: dict):
        self.source = source
        self.meta = meta
        self._ns = None

    def load(self) -> dict:
        if self._ns is None:
            ns = dict(_RUNTIME_GLOBALS)
            exec(compile(self.source, "<repro.hdl.compiled>", "exec"), ns)
            self._ns = ns
        return self._ns

    def __getstate__(self):
        return self.source, self.meta

    def __setstate__(self, state):
        self.source, self.meta = state
        self._ns = None


# --------------------------------------------------------------------------
# Runtime
# --------------------------------------------------------------------------


class _CWait:
    """A suspended coroutine waiting on edges (or an immediate resume)."""

    __slots__ = ("edges", "gen", "ci", "done")

    def __init__(self, edges, gen, ci):
        self.edges = edges
        self.gen = gen
        self.ci = ci
        self.done = False


class CompiledSim:
    """Runs a :class:`CompiledProgram` with event-scheduler semantics.

    Exposes the same post-run surface as :class:`Simulator`: ``time``,
    ``output``, ``error_count``, ``finished`` and :meth:`stats`.  Raises
    :class:`XBail` where the event engine would raise an error — callers
    must then re-run the event engine for the authoritative result.
    """

    def __init__(self, program: CompiledProgram, seed: int = 1):
        meta = program.meta
        ns = program.load()
        self.program = program
        self.V = list(meta["v0"])
        self.X = list(meta["x0"])
        self._widths = meta["widths"]
        self._names = meta["names"]
        self._comb_fns = ns["COMB"]
        self._edge_fns = ns["EDGE"]
        self._coro_fns = ns["CORO"]
        self._comb_watch = meta["comb_watch"]
        self._edge_watch = meta["edge_watch"]
        self._restartable = meta["restartable"]
        self._coro_names = meta["coro_names"]
        self._t0 = meta["t0"]
        self.time = 0
        self.output: list[str] = []
        self.error_count = 0
        self.finished = False
        self.rand = (seed * 2654435761 + 1) & 0xFFFFFFFF
        self.st = 0
        self.active: deque = deque()
        self.nba: list = []
        self.heap: list = []
        self._heap_seq = 0
        self._edge_waiters: dict[int, list[_CWait]] = {}
        self.events = 0
        self.delta_cycles = 0
        self.nba_updates = 0
        self.time_slots = 0

    # -- value plumbing ------------------------------------------------------

    def set(self, i: int, nv: int, nx: int) -> None:
        """Write a signal and fire its watchers on change.  Pair equality
        is Logic equality: widths are fixed and planes are normalised."""
        ov, ox = self.V[i], self.X[i]
        if ov == nv and ox == nx:
            return
        self.V[i] = nv
        self.X[i] = nx
        self._notify(i, ov, ox, nv, nx)

    def write(self, text: str) -> None:
        out = self.output
        if out and not out[-1].endswith("\n"):
            out[-1] += text
        else:
            out.append(text)

    def _notify(self, i: int, ov: int, ox: int, nv: int, nx: int) -> None:
        active = self.active
        for cid in self._comb_watch.get(i, ()):
            active.append((0, cid))
        # Edge predicates on bit 0, matching Simulator._notify (an X bit
        # stores value 0, so the value plane alone decides 1-ness).
        pos = (nv & 1) and not (ov & 1)
        neg = not (nv & 1) and not (nx & 1) and ((ov | ox) & 1)
        for kind, eid in self._edge_watch.get(i, ()):
            if (kind == 0 and pos) or (kind == 1 and neg) or kind == 2:
                active.append((1, eid))
        waiters = self._edge_waiters.get(i)
        if waiters:
            still = []
            for wait in waiters:
                if wait.done:
                    continue
                hit = any((k == 0 and pos) or (k == 1 and neg) or k == 2
                          for k, s in wait.edges if s == i)
                if hit:
                    wait.done = True
                    active.append((4, wait))
                else:
                    still.append(wait)
            self._edge_waiters[i] = still

    # -- coroutine plumbing --------------------------------------------------

    def _advance(self, gen, ci: int) -> None:
        try:
            req = next(gen)
        except StopIteration:
            if self._restartable[ci]:
                self.active.append((3, ci))
            return
        except _CFinish:
            return
        kind, payload = req
        if kind == 0:
            if payload <= 0:
                self.active.append((4, _CWait((), gen, ci)))
            else:
                self._heap_seq += 1
                heapq.heappush(self.heap, (self.time + payload,
                                           self._heap_seq, (gen, ci)))
        else:
            wait = _CWait(payload, gen, ci)
            for _, s in payload:
                self._edge_waiters.setdefault(s, []).append(wait)

    def _apply_nba(self) -> None:
        updates = self.nba
        self.nba = []
        self.nba_updates += len(updates)
        for i, msb, lsb, pv, px, wp in updates:
            if msb is None:
                self.set(i, pv, px)
            else:
                nv, nx = _splice(self.V[i], self.X[i], self._widths[i],
                                 lsb, wp, pv, px)
                self.set(i, nv, nx)

    # -- scheduler -----------------------------------------------------------

    def run(self, max_time: int = 1_000_000) -> None:
        """Simulate to completion, or raise :class:`XBail` to fall back.

        Telemetry publishes only on a completed run — an abandoned run's
        counters would double-count with the event re-run's.
        """
        self._run(max_time)
        self._publish_telemetry()

    def stats(self) -> dict[str, int]:
        return {"events": self.events, "delta_cycles": self.delta_cycles,
                "nba_updates": self.nba_updates,
                "time_slots": self.time_slots, "final_time": self.time}

    def _publish_telemetry(self) -> None:
        if not get_tracer().enabled:
            return
        metrics = get_metrics()
        metrics.counter("sim.runs").add(1)
        metrics.counter("sim.events").add(self.events)
        metrics.counter("sim.delta_cycles").add(self.delta_cycles)
        metrics.counter("sim.nba_updates").add(self.nba_updates)
        metrics.counter("sim.time_slots").add(self.time_slots)
        metrics.counter("sim.backend.compiled.runs").add(1)
        metrics.counter("sim.backend.compiled.events").add(self.events)

    def _run(self, max_time: int) -> None:
        active = self.active
        V, X = self.V, self.X
        comb_fns = self._comb_fns
        edge_fns = self._edge_fns
        coro_fns = self._coro_fns
        for tok in self._t0:
            active.append(tok)
        restart_counts: dict[str, int] = {}
        while True:
            self.st = 0
            while active or self.nba:
                if self.finished:
                    return
                self.delta_cycles += 1
                while active:
                    tag, arg = active.popleft()
                    self.events += 1
                    self.st += 1
                    if self.st > _MAX_STEPS:
                        raise XBail("runaway activity")
                    if tag == 0:
                        try:
                            comb_fns[arg](self, V, X)
                        except _CFinish:
                            pass
                    elif tag == 1:
                        try:
                            edge_fns[arg](self, V, X)
                        except _CFinish:
                            pass
                    elif tag == 4:
                        self._advance(arg.gen, arg.ci)
                    elif tag == 2:
                        self._advance(coro_fns[arg](self, V, X), arg)
                    else:       # 3: restart a looping always process
                        key = self._coro_names[arg]
                        n = restart_counts.get(key, 0) + 1
                        restart_counts[key] = n
                        if n > _MAX_STEPS:
                            raise XBail("always process never consumes time")
                        self._advance(coro_fns[arg](self, V, X), arg)
                    if self.finished:
                        return
                # The event engine charges steps per *statement* and errors
                # mid-stream; catching the overflow at the delta boundary
                # still guarantees the fallback whenever it would have.
                if self.st > _MAX_STEPS:
                    raise XBail("runaway activity")
                self._apply_nba()
            if not self.heap:
                return
            next_time = self.heap[0][0]
            if next_time > max_time:
                return
            self.time = next_time
            self.time_slots += 1
            restart_counts.clear()
            while self.heap and self.heap[0][0] == self.time:
                _, _, (gen, ci) = heapq.heappop(self.heap)
                active.append((4, _CWait((), gen, ci)))

    def value_of(self, flat_name: str) -> Logic:
        i = self._names.index(flat_name)
        return Logic(self._widths[i], self.V[i], self.X[i])
