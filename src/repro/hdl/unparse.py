"""AST → mini-Verilog source rendering (the parser's inverse).

The unparser closes the loop ``parse -> unparse -> reparse``: for every AST
this subset can represent, reparsing the rendered text must reproduce a
structurally identical AST (ignoring source locations).  That property is
what :mod:`repro.fuzz` checks continuously (oracle *e*), and it is also how
the fuzzer materializes generated designs — fuzz cases are built as ASTs
and rendered through this module, so the generator can never emit text the
parser disagrees about.

Rendering notes (all chosen so the round-trip is exact):

* binary/ternary expressions are fully parenthesized — parentheses do not
  appear in the AST, so extra ones are free;
* operators are emitted in the parser's canonical spelling (the parser
  folds ``<<<``/``>>>``/``===``/``!==`` into their two-char forms);
* sized literals with X bits render in binary, X-free ones in hex;
* all parameters are declared in the module body (``parameter`` /
  ``localparam``), which keeps the declaration order of the parameter
  tuple regardless of where the original text declared them;
* an ``always`` block with an empty edge list renders as ``always @*``
  unless its body contains timing controls (``#``/``@``), in which case it
  renders as a bare ``always`` — both forms parse to the same AST.
"""

from __future__ import annotations

import dataclasses

from . import ast as A

_IND = "  "


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


def _number(expr: A.Number) -> str:
    if not expr.sized:
        return str(expr.value)
    if expr.xmask:
        bits = []
        for i in range(expr.width - 1, -1, -1):
            if (expr.xmask >> i) & 1:
                bits.append("x")
            else:
                bits.append(str((expr.value >> i) & 1))
        return f"{expr.width}'b{''.join(bits)}"
    return f"{expr.width}'h{expr.value:x}"


def _string(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n").replace("\t", "\\t")
    return f'"{escaped}"'


def unparse_expr(expr: A.Expr) -> str:
    """Render one expression (fully parenthesized, canonical operators)."""
    if isinstance(expr, A.Number):
        return _number(expr)
    if isinstance(expr, A.Identifier):
        return expr.name
    if isinstance(expr, A.StringLit):
        return _string(expr.text)
    if isinstance(expr, A.Unary):
        return f"{expr.op}({unparse_expr(expr.operand)})"
    if isinstance(expr, A.Binary):
        return (f"({unparse_expr(expr.left)} {expr.op} "
                f"{unparse_expr(expr.right)})")
    if isinstance(expr, A.Ternary):
        return (f"({unparse_expr(expr.cond)} ? {unparse_expr(expr.if_true)}"
                f" : {unparse_expr(expr.if_false)})")
    if isinstance(expr, A.Concat):
        return "{" + ", ".join(unparse_expr(p) for p in expr.parts) + "}"
    if isinstance(expr, A.Replicate):
        return ("{" + unparse_expr(expr.count) +
                "{" + unparse_expr(expr.inner) + "}}")
    if isinstance(expr, A.Index):
        return f"{expr.target}[{unparse_expr(expr.index)}]"
    if isinstance(expr, A.Slice):
        return (f"{expr.target}[{unparse_expr(expr.msb)}:"
                f"{unparse_expr(expr.lsb)}]")
    if isinstance(expr, A.SystemCall):
        if expr.args:
            return (expr.name + "(" +
                    ", ".join(unparse_expr(a) for a in expr.args) + ")")
        return expr.name
    if isinstance(expr, A.FunctionCall):
        return (expr.name + "(" +
                ", ".join(unparse_expr(a) for a in expr.args) + ")")
    raise TypeError(f"cannot unparse expression {type(expr).__name__}")


def _lvalue(target: A.LValue) -> str:
    if target.index is not None:
        return f"{target.name}[{unparse_expr(target.index)}]"
    if target.msb is not None:
        return (f"{target.name}[{unparse_expr(target.msb)}:"
                f"{unparse_expr(target.lsb)}]")
    return target.name


def _delay_amount(expr: A.Expr) -> str:
    """A ``#`` delay operand is parsed as a primary, so wrap non-primaries."""
    if isinstance(expr, (A.Number, A.Identifier)):
        return unparse_expr(expr)
    return f"({unparse_expr(expr)})"


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


def _edges(edges: tuple[tuple[str, str], ...]) -> str:
    parts = []
    for kind, sig in edges:
        parts.append(sig if kind == "any" else f"{kind} {sig}")
    return "(" + " or ".join(parts) + ")"


def unparse_stmt(stmt: A.Stmt, indent: int = 0) -> str:
    """Render one statement at the given indent level (no trailing NL)."""
    pad = _IND * indent
    if isinstance(stmt, A.Block):
        if not stmt.stmts:
            return pad + ";"
        inner = "\n".join(unparse_stmt(s, indent + 1) for s in stmt.stmts)
        return f"{pad}begin\n{inner}\n{pad}end"
    if isinstance(stmt, A.Assign):
        op = "=" if stmt.blocking else "<="
        return f"{pad}{_lvalue(stmt.target)} {op} {unparse_expr(stmt.expr)};"
    if isinstance(stmt, A.If):
        out = (f"{pad}if ({unparse_expr(stmt.cond)})\n"
               f"{unparse_stmt(stmt.then, indent + 1)}")
        if stmt.other is not None:
            out += f"\n{pad}else\n{unparse_stmt(stmt.other, indent + 1)}"
        return out
    if isinstance(stmt, A.Case):
        kw = "casez" if stmt.wildcard else "case"
        lines = [f"{pad}{kw} ({unparse_expr(stmt.subject)})"]
        for item in stmt.items:
            if item.labels is None:
                lines.append(f"{pad}{_IND}default:")
            else:
                labels = ", ".join(unparse_expr(l) for l in item.labels)
                lines.append(f"{pad}{_IND}{labels}:")
            lines.append(unparse_stmt(item.body, indent + 2))
        lines.append(f"{pad}endcase")
        return "\n".join(lines)
    if isinstance(stmt, A.For):
        init = f"{_lvalue(stmt.init.target)} = {unparse_expr(stmt.init.expr)}"
        step = f"{_lvalue(stmt.step.target)} = {unparse_expr(stmt.step.expr)}"
        return (f"{pad}for ({init}; {unparse_expr(stmt.cond)}; {step})\n"
                f"{unparse_stmt(stmt.body, indent + 1)}")
    if isinstance(stmt, A.While):
        return (f"{pad}while ({unparse_expr(stmt.cond)})\n"
                f"{unparse_stmt(stmt.body, indent + 1)}")
    if isinstance(stmt, A.Repeat):
        return (f"{pad}repeat ({unparse_expr(stmt.count)})\n"
                f"{unparse_stmt(stmt.body, indent + 1)}")
    if isinstance(stmt, A.Delay):
        if stmt.then is None:
            return f"{pad}#{_delay_amount(stmt.amount)};"
        return (f"{pad}#{_delay_amount(stmt.amount)}\n"
                f"{unparse_stmt(stmt.then, indent + 1)}")
    if isinstance(stmt, A.EventWait):
        return f"{pad}@{_edges(stmt.edges)};"
    if isinstance(stmt, A.SysTask):
        if stmt.args:
            args = ", ".join(unparse_expr(a) for a in stmt.args)
            return f"{pad}{stmt.name}({args});"
        return f"{pad}{stmt.name};"
    raise TypeError(f"cannot unparse statement {type(stmt).__name__}")


# --------------------------------------------------------------------------
# Module items
# --------------------------------------------------------------------------


def _rng(rng: A.Range | None) -> str:
    if rng is None:
        return ""
    return f"[{unparse_expr(rng.msb)}:{unparse_expr(rng.lsb)}] "


def _has_timing(stmt: A.Stmt | None) -> bool:
    if stmt is None:
        return False
    if isinstance(stmt, (A.Delay, A.EventWait)):
        return True
    if isinstance(stmt, A.Block):
        return any(_has_timing(s) for s in stmt.stmts)
    if isinstance(stmt, A.If):
        return _has_timing(stmt.then) or _has_timing(stmt.other)
    if isinstance(stmt, A.Case):
        return any(_has_timing(i.body) for i in stmt.items)
    if isinstance(stmt, (A.For, A.While, A.Repeat)):
        return _has_timing(stmt.body)
    return False


def _port_decl(port: A.Port) -> str:
    reg = "reg " if port.is_reg else ""
    return f"{port.direction} {reg}{_rng(port.rng)}{port.name}"


def unparse_module(module: A.Module) -> str:
    """Render one module (ANSI port header, body parameters)."""
    lines: list[str] = []
    ports = ", ".join(_port_decl(p) for p in module.ports)
    lines.append(f"module {module.name}({ports});")

    for param in module.parameters:
        kw = "localparam" if param.local else "parameter"
        lines.append(f"{_IND}{kw} {param.name} = "
                     f"{unparse_expr(param.default)};")
    for net in module.nets:
        init = "" if net.init is None else f" = {unparse_expr(net.init)}"
        rng = "" if net.kind == "integer" else _rng(net.rng)
        lines.append(f"{_IND}{net.kind} {rng}{net.name}{init};")
    for func in module.functions:
        args = ", ".join(f"input {_rng(arng)}{aname}"
                         for aname, arng in func.args)
        lines.append(f"{_IND}function {_rng(func.rng)}{func.name}({args});")
        for net in func.locals:
            rng = "" if net.kind == "integer" else _rng(net.rng)
            lines.append(f"{_IND * 2}{net.kind} {rng}{net.name};")
        lines.append(unparse_stmt(func.body, 2))
        lines.append(f"{_IND}endfunction")
    for ca in module.assigns:
        lines.append(f"{_IND}assign {_lvalue(ca.target)} = "
                     f"{unparse_expr(ca.expr)};")
    for inst in module.instances:
        params = ""
        if inst.param_overrides:
            parts = [unparse_expr(e) if name is None
                     else f".{name}({unparse_expr(e)})"
                     for name, e in inst.param_overrides]
            params = " #(" + ", ".join(parts) + ")"
        conns = []
        for name, expr in inst.connections:
            body = "" if expr is None else unparse_expr(expr)
            conns.append(body if name is None else f".{name}({body})")
        lines.append(f"{_IND}{inst.module}{params} {inst.name}"
                     f"({', '.join(conns)});")
    for alw in module.always_blocks:
        if alw.edges:
            head = f"{_IND}always @{_edges(alw.edges)}"
        elif _has_timing(alw.body):
            head = f"{_IND}always"
        else:
            head = f"{_IND}always @*"
        lines.append(head)
        lines.append(unparse_stmt(alw.body, 2))
    for ini in module.initial_blocks:
        lines.append(f"{_IND}initial")
        lines.append(unparse_stmt(ini.body, 2))

    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def unparse(source: A.SourceFile | A.Module) -> str:
    """Render a whole source file (or a single module)."""
    if isinstance(source, A.Module):
        return unparse_module(source)
    return "\n".join(unparse_module(m) for m in source.modules.values())


# --------------------------------------------------------------------------
# Structural comparison support
# --------------------------------------------------------------------------


def strip_locations(node):
    """Deep-copy an AST value with every ``loc`` field cleared.

    Makes reparsed ASTs structurally comparable: source locations are the
    only fields that legitimately differ across a round trip.
    """
    if isinstance(node, A.SourceFile):
        out = A.SourceFile()
        for name, mod in node.modules.items():
            out.modules[name] = strip_locations(mod)
        return out
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        updates = {}
        for f in dataclasses.fields(node):
            if f.name == "loc":
                updates[f.name] = None
            else:
                updates[f.name] = strip_locations(getattr(node, f.name))
        return type(node)(**updates)
    if isinstance(node, tuple):
        return tuple(strip_locations(x) for x in node)
    if isinstance(node, list):
        return [strip_locations(x) for x in node]
    return node
