"""Four-state logic vectors for the mini-Verilog simulator.

A :class:`Logic` is a fixed-width bit vector in which every bit is one of
``0``, ``1`` or ``X`` (unknown).  ``Z`` is folded into ``X`` — the subset of
Verilog we support has no tristate buses, and Verilog's own arithmetic already
treats ``Z`` operands as ``X``.

The representation is two integers: ``value`` holds the known bits and
``xmask`` marks the unknown ones.  A bit position with ``xmask`` set is
unknown regardless of the corresponding ``value`` bit (which is kept at zero
as a normal form so equality and hashing are structural).
"""

from __future__ import annotations

from dataclasses import dataclass


def _mask(width: int) -> int:
    return (1 << width) - 1


@dataclass(frozen=True)
class Logic:
    """An unsigned four-state bit vector of fixed ``width``."""

    width: int
    value: int = 0
    xmask: int = 0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"Logic width must be positive, got {self.width}")
        m = _mask(self.width)
        xm = self.xmask & m
        # Normalise: unknown bits always carry value 0.
        object.__setattr__(self, "xmask", xm)
        object.__setattr__(self, "value", self.value & m & ~xm)

    # -- constructors ------------------------------------------------------

    @staticmethod
    def from_int(value: int, width: int) -> "Logic":
        return Logic(width, value & _mask(width), 0)

    @staticmethod
    def unknown(width: int) -> "Logic":
        return Logic(width, 0, _mask(width))

    # -- predicates --------------------------------------------------------

    @property
    def has_x(self) -> bool:
        return self.xmask != 0

    @property
    def all_known(self) -> bool:
        return self.xmask == 0

    def is_true(self) -> bool:
        """Verilog truthiness: true iff some known bit is 1."""
        return self.value != 0

    def is_false(self) -> bool:
        """True iff the value is definitely zero (no X bits, value 0)."""
        return self.value == 0 and self.xmask == 0

    # -- conversions -------------------------------------------------------

    def to_int(self) -> int:
        """The integer value; X bits read as 0 (matching $display of X-free use)."""
        return self.value

    def to_signed(self) -> int:
        v = self.value
        if v & (1 << (self.width - 1)):
            v -= 1 << self.width
        return v

    def bit(self, i: int) -> "Logic":
        if i < 0 or i >= self.width:
            return Logic.unknown(1)
        return Logic(1, (self.value >> i) & 1, (self.xmask >> i) & 1)

    def slice(self, msb: int, lsb: int) -> "Logic":
        if msb < lsb:
            msb, lsb = lsb, msb
        width = msb - lsb + 1
        if lsb >= self.width:
            return Logic.unknown(width)
        return Logic(width, self.value >> lsb, self.xmask >> lsb)

    def resize(self, width: int) -> "Logic":
        """Zero-extend or truncate to ``width`` (X bits extend as known 0)."""
        return Logic(width, self.value, self.xmask)

    def __str__(self) -> str:
        if not self.has_x:
            return f"{self.width}'h{self.value:x}"
        bits = []
        for i in range(self.width - 1, -1, -1):
            if (self.xmask >> i) & 1:
                bits.append("x")
            else:
                bits.append(str((self.value >> i) & 1))
        return f"{self.width}'b{''.join(bits)}"

    __repr__ = __str__

    # -- arithmetic (X-propagating: any X operand poisons the result) ------

    def _arith(self, other: "Logic", op, width: int | None = None) -> "Logic":
        w = width if width is not None else max(self.width, other.width)
        if self.has_x or other.has_x:
            return Logic.unknown(w)
        return Logic.from_int(op(self.value, other.value), w)

    def add(self, other: "Logic") -> "Logic":
        # One growth bit keeps the carry: Verilog sizes expressions by
        # context (including the LHS), so dropping the carry at the operand
        # width would corrupt `wire [8:0] s = a + b` with 8-bit operands.
        # Assignment truncates to the target width anyway.
        return self._arith(other, lambda a, b: a + b,
                           max(self.width, other.width) + 1)

    def sub(self, other: "Logic") -> "Logic":
        return self._arith(other, lambda a, b: a - b,
                           max(self.width, other.width) + 1)

    def mul(self, other: "Logic") -> "Logic":
        return self._arith(other, lambda a, b: a * b,
                           min(128, self.width + other.width))

    def div(self, other: "Logic") -> "Logic":
        w = max(self.width, other.width)
        if self.has_x or other.has_x or other.value == 0:
            return Logic.unknown(w)
        return Logic.from_int(self.value // other.value, w)

    def mod(self, other: "Logic") -> "Logic":
        w = max(self.width, other.width)
        if self.has_x or other.has_x or other.value == 0:
            return Logic.unknown(w)
        return Logic.from_int(self.value % other.value, w)

    def pow(self, other: "Logic") -> "Logic":
        w = max(self.width, other.width)
        if self.has_x or other.has_x:
            return Logic.unknown(w)
        return Logic.from_int(pow(self.value, other.value, 1 << w), w)

    def neg(self) -> "Logic":
        if self.has_x:
            return Logic.unknown(self.width)
        return Logic.from_int(-self.value, self.width)

    # -- bitwise (X-precise per bit) ----------------------------------------

    def and_(self, other: "Logic") -> "Logic":
        w = max(self.width, other.width)
        a, b = self.resize(w), other.resize(w)
        # 0 AND anything = 0 even if the other bit is X.
        known_zero = (~a.value & ~a.xmask) | (~b.value & ~b.xmask)
        value = a.value & b.value
        xmask = (a.xmask | b.xmask) & ~known_zero
        return Logic(w, value, xmask & _mask(w))

    def or_(self, other: "Logic") -> "Logic":
        w = max(self.width, other.width)
        a, b = self.resize(w), other.resize(w)
        known_one = a.value | b.value
        value = known_one
        xmask = (a.xmask | b.xmask) & ~known_one
        return Logic(w, value, xmask & _mask(w))

    def xor(self, other: "Logic") -> "Logic":
        w = max(self.width, other.width)
        a, b = self.resize(w), other.resize(w)
        xmask = a.xmask | b.xmask
        return Logic(w, (a.value ^ b.value) & ~xmask, xmask)

    def not_(self) -> "Logic":
        return Logic(self.width, ~self.value & _mask(self.width) & ~self.xmask, self.xmask)

    # -- shifts --------------------------------------------------------------

    def shl(self, other: "Logic") -> "Logic":
        if other.has_x:
            return Logic.unknown(self.width)
        n = other.value
        if n >= self.width:
            return Logic(self.width, 0, 0)
        return Logic(self.width, self.value << n, self.xmask << n)

    def shr(self, other: "Logic") -> "Logic":
        if other.has_x:
            return Logic.unknown(self.width)
        n = other.value
        return Logic(self.width, self.value >> n, self.xmask >> n)

    # -- comparison (1-bit results; X operands give X) -----------------------

    def _cmp(self, other: "Logic", op) -> "Logic":
        if self.has_x or other.has_x:
            return Logic.unknown(1)
        return Logic(1, 1 if op(self.value, other.value) else 0, 0)

    def eq(self, other: "Logic") -> "Logic":
        return self._cmp(other, lambda a, b: a == b)

    def ne(self, other: "Logic") -> "Logic":
        return self._cmp(other, lambda a, b: a != b)

    def lt(self, other: "Logic") -> "Logic":
        return self._cmp(other, lambda a, b: a < b)

    def le(self, other: "Logic") -> "Logic":
        return self._cmp(other, lambda a, b: a <= b)

    def gt(self, other: "Logic") -> "Logic":
        return self._cmp(other, lambda a, b: a > b)

    def ge(self, other: "Logic") -> "Logic":
        return self._cmp(other, lambda a, b: a >= b)

    def case_eq(self, other: "Logic") -> "Logic":
        """``===``: X bits compare literally."""
        w = max(self.width, other.width)
        a, b = self.resize(w), other.resize(w)
        same = a.value == b.value and a.xmask == b.xmask
        return Logic(1, 1 if same else 0, 0)

    # -- logical -------------------------------------------------------------

    def logical_not(self) -> "Logic":
        if self.value != 0:
            return Logic(1, 0, 0)
        if self.has_x:
            return Logic.unknown(1)
        return Logic(1, 1, 0)

    def logical_and(self, other: "Logic") -> "Logic":
        if self.is_false() or other.is_false():
            return Logic(1, 0, 0)
        if self.has_x or other.has_x:
            return Logic.unknown(1)
        return Logic(1, 1, 0)

    def logical_or(self, other: "Logic") -> "Logic":
        if self.is_true() or other.is_true():
            return Logic(1, 1, 0)
        if self.has_x or other.has_x:
            return Logic.unknown(1)
        return Logic(1, 0, 0)

    # -- reductions -----------------------------------------------------------

    def reduce_and(self) -> "Logic":
        m = _mask(self.width)
        if (self.value | self.xmask) != m:
            return Logic(1, 0, 0)  # some known-0 bit
        if self.xmask:
            return Logic.unknown(1)
        return Logic(1, 1, 0)

    def reduce_or(self) -> "Logic":
        if self.value:
            return Logic(1, 1, 0)
        if self.xmask:
            return Logic.unknown(1)
        return Logic(1, 0, 0)

    def reduce_xor(self) -> "Logic":
        if self.xmask:
            return Logic.unknown(1)
        return Logic(1, bin(self.value).count("1") & 1, 0)

    # -- structure --------------------------------------------------------------

    def concat(self, other: "Logic") -> "Logic":
        """``{self, other}`` — self becomes the high part."""
        w = self.width + other.width
        return Logic(
            w,
            (self.value << other.width) | other.value,
            (self.xmask << other.width) | other.xmask,
        )

    def replicate(self, n: int) -> "Logic":
        if n <= 0:
            raise ValueError("replication count must be positive")
        out = self
        for _ in range(n - 1):
            out = out.concat(self)
        return out


def concat_all(parts: list[Logic]) -> Logic:
    """Concatenate left-to-right (first element is most significant)."""
    if not parts:
        raise ValueError("cannot concatenate zero parts")
    out = parts[0]
    for p in parts[1:]:
        out = out.concat(p)
    return out
