"""Recursive-descent parser for the mini-Verilog subset.

Accepts both ANSI-style headers (``module m(input [7:0] a, output reg q);``)
and the classic non-ANSI form with directions declared in the body, because
LLM-generated Verilog (this repo's main source of input) mixes both styles.
"""

from __future__ import annotations

from .ast import (
    Always, Assign, Binary, Block, Case, CaseItem, Concat, ContinuousAssign,
    Delay, EventWait, Expr, For, Function, FunctionCall, Identifier, If,
    Index, Initial, Instance, LValue, Module, Net, Number, Parameter, Port,
    Range, Repeat, Replicate, Slice, SourceFile, Stmt, StringLit, SysTask,
    SystemCall, Ternary, Unary, While,
)
from .errors import ParseError
from .lexer import TokKind, Token, tokenize

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6, "===": 6, "!==": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8, "<<<": 8, ">>>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
    "**": 11,
}

_UNARY_OPS = {"~", "!", "-", "+", "&", "|", "^"}


class Parser:
    def __init__(self, source: str):
        self.toks = tokenize(source)
        self.i = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        i = min(self.i + ahead, len(self.toks) - 1)
        return self.toks[i]

    def _next(self) -> Token:
        tok = self.toks[self.i]
        if tok.kind is not TokKind.EOF:
            self.i += 1
        return tok

    def _at(self, kind: TokKind, text: str | None = None) -> bool:
        tok = self._peek()
        return tok.kind is kind and (text is None or tok.text == text)

    def _accept(self, kind: TokKind, text: str | None = None) -> Token | None:
        if self._at(kind, text):
            return self._next()
        return None

    def _expect(self, kind: TokKind, text: str | None = None) -> Token:
        tok = self._peek()
        if not self._at(kind, text):
            want = text or kind.name.lower()
            raise ParseError(f"expected '{want}' but found '{tok.text or 'EOF'}'", tok.loc)
        return self._next()

    def _kw(self, word: str) -> bool:
        return self._at(TokKind.KEYWORD, word)

    def _accept_kw(self, word: str) -> bool:
        return self._accept(TokKind.KEYWORD, word) is not None

    def _expect_kw(self, word: str) -> Token:
        return self._expect(TokKind.KEYWORD, word)

    # -- entry points ---------------------------------------------------------

    def parse_source(self) -> SourceFile:
        out = SourceFile()
        while not self._at(TokKind.EOF):
            out.add(self.parse_module())
        return out

    # -- module ----------------------------------------------------------------

    def parse_module(self) -> Module:
        loc = self._peek().loc
        self._expect_kw("module")
        name = self._expect(TokKind.IDENT).text

        parameters: list[Parameter] = []
        if self._accept(TokKind.OP, "#"):
            self._expect(TokKind.OP, "(")
            while not self._at(TokKind.OP, ")"):
                self._accept_kw("parameter")
                pname = self._expect(TokKind.IDENT).text
                self._expect(TokKind.OP, "=")
                parameters.append(Parameter(pname, self.parse_expr()))
                if not self._accept(TokKind.OP, ","):
                    break
            self._expect(TokKind.OP, ")")

        ports: list[Port] = []
        port_order: list[str] = []
        if self._accept(TokKind.OP, "("):
            last_dir: str | None = None
            last_rng: Range | None = None
            last_reg = False
            while not self._at(TokKind.OP, ")"):
                ploc = self._peek().loc
                direction = None
                for d in ("input", "output", "inout"):
                    if self._accept_kw(d):
                        direction = d
                        break
                if direction is not None:
                    is_reg = self._accept_kw("reg")
                    self._accept_kw("wire")
                    self._accept_kw("signed")
                    rng = self._parse_optional_range()
                    pname = self._expect(TokKind.IDENT).text
                    ports.append(Port(pname, direction, rng, is_reg, ploc))
                    port_order.append(pname)
                    last_dir, last_rng, last_reg = direction, rng, is_reg
                else:
                    pname = self._expect(TokKind.IDENT).text
                    if last_dir is not None and self.toks[self.i - 2].text == ",":
                        # Continuation of an ANSI group: input [7:0] a, b, c
                        ports.append(Port(pname, last_dir, last_rng, last_reg, ploc))
                    else:
                        ports.append(Port(pname, "", None, False, ploc))  # non-ANSI
                    port_order.append(pname)
                if not self._accept(TokKind.OP, ","):
                    break
            self._expect(TokKind.OP, ")")
        self._expect(TokKind.OP, ";")

        nets: list[Net] = []
        assigns: list[ContinuousAssign] = []
        always_blocks: list[Always] = []
        initial_blocks: list[Initial] = []
        instances: list[Instance] = []
        functions: list[Function] = []
        port_by_name = {p.name: i for i, p in enumerate(ports)}

        while not self._kw("endmodule"):
            if self._at(TokKind.EOF):
                raise ParseError(f"unexpected end of file inside module '{name}'", self._peek().loc)
            tok = self._peek()
            if tok.kind is TokKind.KEYWORD and tok.text in ("input", "output", "inout"):
                self._parse_body_ports(ports, port_by_name)
            elif tok.kind is TokKind.KEYWORD and tok.text in ("wire", "reg", "integer", "genvar"):
                nets.extend(self._parse_net_decl())
            elif tok.kind is TokKind.KEYWORD and tok.text in ("parameter", "localparam"):
                local = tok.text == "localparam"
                self._next()
                self._parse_optional_range()
                while True:
                    pname = self._expect(TokKind.IDENT).text
                    self._expect(TokKind.OP, "=")
                    parameters.append(Parameter(pname, self.parse_expr(), local=local))
                    if not self._accept(TokKind.OP, ","):
                        break
                self._expect(TokKind.OP, ";")
            elif self._accept_kw("assign"):
                while True:
                    target = self._parse_lvalue()
                    self._expect(TokKind.OP, "=")
                    assigns.append(ContinuousAssign(target, self.parse_expr(), tok.loc))
                    if not self._accept(TokKind.OP, ","):
                        break
                self._expect(TokKind.OP, ";")
            elif self._accept_kw("always"):
                always_blocks.append(self._parse_always(tok.loc))
            elif self._accept_kw("initial"):
                initial_blocks.append(Initial(self.parse_stmt(), tok.loc))
            elif self._accept_kw("function"):
                functions.append(self._parse_function())
            elif tok.kind is TokKind.KEYWORD and tok.text == "generate":
                raise ParseError("generate blocks are not supported by this subset", tok.loc)
            elif tok.kind is TokKind.IDENT:
                instances.append(self._parse_instance())
            else:
                raise ParseError(f"unexpected token '{tok.text}' in module body", tok.loc)

        self._expect_kw("endmodule")
        return Module(
            name=name,
            ports=tuple(ports),
            parameters=tuple(parameters),
            nets=tuple(nets),
            assigns=tuple(assigns),
            always_blocks=tuple(always_blocks),
            initial_blocks=tuple(initial_blocks),
            instances=tuple(instances),
            functions=tuple(functions),
            loc=loc,
        )

    def _parse_body_ports(self, ports: list[Port], port_by_name: dict[str, int]) -> None:
        """Non-ANSI direction declaration in the module body."""
        direction = self._next().text
        is_reg = self._accept_kw("reg")
        self._accept_kw("wire")
        self._accept_kw("signed")
        rng = self._parse_optional_range()
        while True:
            tok = self._expect(TokKind.IDENT)
            if tok.text not in port_by_name:
                raise ParseError(f"'{tok.text}' declared {direction} but not in port list", tok.loc)
            idx = port_by_name[tok.text]
            ports[idx] = Port(tok.text, direction, rng, is_reg, tok.loc)
            if not self._accept(TokKind.OP, ","):
                break
        self._expect(TokKind.OP, ";")

    def _parse_optional_range(self) -> Range | None:
        if not self._at(TokKind.OP, "["):
            return None
        self._next()
        msb = self.parse_expr()
        self._expect(TokKind.OP, ":")
        lsb = self.parse_expr()
        self._expect(TokKind.OP, "]")
        return Range(msb, lsb)

    def _parse_net_decl(self) -> list[Net]:
        kind = self._next().text
        if kind == "genvar":
            kind = "integer"
        self._accept_kw("signed")
        rng = self._parse_optional_range()
        out: list[Net] = []
        while True:
            tok = self._expect(TokKind.IDENT)
            if self._at(TokKind.OP, "["):
                raise ParseError("memories/arrays are not supported by this subset", tok.loc)
            init = None
            if self._accept(TokKind.OP, "="):
                init = self.parse_expr()
            out.append(Net(tok.text, kind, rng, init, tok.loc))
            if not self._accept(TokKind.OP, ","):
                break
        self._expect(TokKind.OP, ";")
        return out

    def _parse_always(self, loc) -> Always:
        edges: list[tuple[str, str]] = []
        if self._accept(TokKind.OP, "@"):
            if self._accept(TokKind.OP, "*"):
                pass  # @* star form
            else:
                self._expect(TokKind.OP, "(")
                if self._accept(TokKind.OP, "*"):
                    self._expect(TokKind.OP, ")")
                else:
                    while True:
                        kind = "any"
                        if self._accept_kw("posedge"):
                            kind = "posedge"
                        elif self._accept_kw("negedge"):
                            kind = "negedge"
                        sig = self._expect(TokKind.IDENT).text
                        edges.append((kind, sig))
                        if self._accept(TokKind.OP, ",") or self._accept_kw("or"):
                            continue
                        break
                    self._expect(TokKind.OP, ")")
        body = self.parse_stmt()
        return Always(tuple(edges), body, loc)

    def _parse_function(self) -> Function:
        rng = self._parse_optional_range()
        name = self._expect(TokKind.IDENT).text
        args: list[tuple[str, Range | None]] = []
        locals_: list[Net] = []
        if self._accept(TokKind.OP, "("):
            while not self._at(TokKind.OP, ")"):
                self._accept_kw("input")
                arng = self._parse_optional_range()
                args.append((self._expect(TokKind.IDENT).text, arng))
                if not self._accept(TokKind.OP, ","):
                    break
            self._expect(TokKind.OP, ")")
        self._expect(TokKind.OP, ";")
        while self._kw("input") or self._kw("integer") or self._kw("reg"):
            if self._accept_kw("input"):
                arng = self._parse_optional_range()
                while True:
                    args.append((self._expect(TokKind.IDENT).text, arng))
                    if not self._accept(TokKind.OP, ","):
                        break
                self._expect(TokKind.OP, ";")
            else:
                locals_.extend(self._parse_net_decl())
        body = self.parse_stmt()
        self._expect_kw("endfunction")
        return Function(name, rng, tuple(args), tuple(locals_), body)

    def _parse_instance(self) -> Instance:
        loc = self._peek().loc
        module = self._expect(TokKind.IDENT).text
        params: list[tuple[str | None, Expr]] = []
        if self._accept(TokKind.OP, "#"):
            self._expect(TokKind.OP, "(")
            while not self._at(TokKind.OP, ")"):
                if self._accept(TokKind.OP, "."):
                    pname = self._expect(TokKind.IDENT).text
                    self._expect(TokKind.OP, "(")
                    params.append((pname, self.parse_expr()))
                    self._expect(TokKind.OP, ")")
                else:
                    params.append((None, self.parse_expr()))
                if not self._accept(TokKind.OP, ","):
                    break
            self._expect(TokKind.OP, ")")
        name = self._expect(TokKind.IDENT).text
        self._expect(TokKind.OP, "(")
        conns: list[tuple[str | None, Expr | None]] = []
        while not self._at(TokKind.OP, ")"):
            if self._accept(TokKind.OP, "."):
                pname = self._expect(TokKind.IDENT).text
                self._expect(TokKind.OP, "(")
                expr = None if self._at(TokKind.OP, ")") else self.parse_expr()
                self._expect(TokKind.OP, ")")
                conns.append((pname, expr))
            else:
                conns.append((None, self.parse_expr()))
            if not self._accept(TokKind.OP, ","):
                break
        self._expect(TokKind.OP, ")")
        self._expect(TokKind.OP, ";")
        return Instance(module, name, tuple(conns), tuple(params), loc)

    # -- statements --------------------------------------------------------------

    def parse_stmt(self) -> Stmt:
        tok = self._peek()

        if self._accept_kw("begin"):
            if self._accept(TokKind.OP, ":"):
                self._expect(TokKind.IDENT)  # named block label — ignored
            stmts: list[Stmt] = []
            while not self._kw("end"):
                if self._at(TokKind.EOF):
                    raise ParseError("unexpected EOF inside begin/end", tok.loc)
                if self._at(TokKind.KEYWORD, "integer") or self._at(TokKind.KEYWORD, "reg"):
                    raise ParseError("declarations inside begin/end are not supported; "
                                     "declare at module scope", self._peek().loc)
                stmts.append(self.parse_stmt())
            self._expect_kw("end")
            return Block(tuple(stmts))

        if self._accept_kw("if"):
            self._expect(TokKind.OP, "(")
            cond = self.parse_expr()
            self._expect(TokKind.OP, ")")
            then = self.parse_stmt()
            other = self.parse_stmt() if self._accept_kw("else") else None
            return If(cond, then, other)

        if self._kw("case") or self._kw("casez"):
            wildcard = self._next().text == "casez"
            self._expect(TokKind.OP, "(")
            subject = self.parse_expr()
            self._expect(TokKind.OP, ")")
            items: list[CaseItem] = []
            while not self._kw("endcase"):
                if self._accept_kw("default"):
                    self._accept(TokKind.OP, ":")
                    items.append(CaseItem(None, self.parse_stmt()))
                else:
                    labels = [self.parse_expr()]
                    while self._accept(TokKind.OP, ","):
                        labels.append(self.parse_expr())
                    self._expect(TokKind.OP, ":")
                    items.append(CaseItem(tuple(labels), self.parse_stmt()))
            self._expect_kw("endcase")
            return Case(subject, tuple(items), wildcard)

        if self._accept_kw("for"):
            self._expect(TokKind.OP, "(")
            init = self._parse_assignment(require_blocking=True)
            self._expect(TokKind.OP, ";")
            cond = self.parse_expr()
            self._expect(TokKind.OP, ";")
            step = self._parse_assignment(require_blocking=True)
            self._expect(TokKind.OP, ")")
            return For(init, cond, step, self.parse_stmt())

        if self._accept_kw("while"):
            self._expect(TokKind.OP, "(")
            cond = self.parse_expr()
            self._expect(TokKind.OP, ")")
            return While(cond, self.parse_stmt())

        if self._accept_kw("repeat"):
            self._expect(TokKind.OP, "(")
            count = self.parse_expr()
            self._expect(TokKind.OP, ")")
            return Repeat(count, self.parse_stmt())

        if self._accept(TokKind.OP, "#"):
            amount = self._parse_primary()
            if self._accept(TokKind.OP, ";"):
                return Delay(amount, None)
            return Delay(amount, self.parse_stmt())

        if self._accept(TokKind.OP, "@"):
            edges: list[tuple[str, str]] = []
            self._expect(TokKind.OP, "(")
            while True:
                kind = "any"
                if self._accept_kw("posedge"):
                    kind = "posedge"
                elif self._accept_kw("negedge"):
                    kind = "negedge"
                edges.append((kind, self._expect(TokKind.IDENT).text))
                if self._accept(TokKind.OP, ",") or self._accept_kw("or"):
                    continue
                break
            self._expect(TokKind.OP, ")")
            self._accept(TokKind.OP, ";")
            return EventWait(tuple(edges))

        if tok.kind is TokKind.SYSTASK:
            self._next()
            args: list[Expr] = []
            if self._accept(TokKind.OP, "("):
                while not self._at(TokKind.OP, ")"):
                    if self._at(TokKind.STRING):
                        args.append(StringLit(self._next().value))
                    else:
                        args.append(self.parse_expr())
                    if not self._accept(TokKind.OP, ","):
                        break
                self._expect(TokKind.OP, ")")
            self._expect(TokKind.OP, ";")
            return SysTask(tok.text, tuple(args), tok.loc)

        if self._accept(TokKind.OP, ";"):
            return Block(())

        stmt = self._parse_assignment()
        self._expect(TokKind.OP, ";")
        return stmt

    def _parse_lvalue(self) -> LValue:
        if self._at(TokKind.OP, "{"):
            raise ParseError("concatenation lvalues are not supported by this subset",
                             self._peek().loc)
        tok = self._expect(TokKind.IDENT)
        if self._accept(TokKind.OP, "["):
            first = self.parse_expr()
            if self._accept(TokKind.OP, ":"):
                lsb = self.parse_expr()
                self._expect(TokKind.OP, "]")
                return LValue(tok.text, None, first, lsb, tok.loc)
            self._expect(TokKind.OP, "]")
            return LValue(tok.text, first, None, None, tok.loc)
        return LValue(tok.text, None, None, None, tok.loc)

    def _parse_assignment(self, require_blocking: bool = False) -> Assign:
        loc = self._peek().loc
        target = self._parse_lvalue()
        if self._accept(TokKind.OP, "="):
            blocking = True
        elif not require_blocking and self._accept(TokKind.OP, "<="):
            blocking = False
        else:
            tok = self._peek()
            raise ParseError(f"expected assignment operator, found '{tok.text}'", tok.loc)
        return Assign(target, self.parse_expr(), blocking, loc)

    # -- expressions ----------------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> Expr:
        cond = self._parse_binary(1)
        if self._accept(TokKind.OP, "?"):
            if_true = self._parse_ternary()
            self._expect(TokKind.OP, ":")
            if_false = self._parse_ternary()
            return Ternary(cond, if_true, if_false)
        return cond

    def _parse_binary(self, min_prec: int) -> Expr:
        left = self._parse_unary()
        while True:
            tok = self._peek()
            if tok.kind is not TokKind.OP:
                return left
            prec = _PRECEDENCE.get(tok.text)
            if prec is None or prec < min_prec:
                return left
            self._next()
            op = {"<<<": "<<", ">>>": ">>", "===": "==", "!==": "!="}.get(tok.text, tok.text)
            right = self._parse_binary(prec + 1)
            left = Binary(op, left, right)

    def _parse_unary(self) -> Expr:
        tok = self._peek()
        if tok.kind is TokKind.OP and tok.text in _UNARY_OPS:
            self._next()
            return Unary(tok.text, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        tok = self._peek()

        if tok.kind is TokKind.NUMBER:
            self._next()
            return Number(32, tok.value)
        if tok.kind is TokKind.SIZED_NUMBER:
            self._next()
            width, value, xmask = tok.value
            return Number(width, value, xmask, sized=True)
        if tok.kind is TokKind.STRING:
            self._next()
            return StringLit(tok.value)
        if tok.kind is TokKind.SYSTASK:
            self._next()
            args: list[Expr] = []
            if self._accept(TokKind.OP, "("):
                while not self._at(TokKind.OP, ")"):
                    args.append(self.parse_expr())
                    if not self._accept(TokKind.OP, ","):
                        break
                self._expect(TokKind.OP, ")")
            return SystemCall(tok.text, tuple(args))
        if self._accept(TokKind.OP, "("):
            inner = self.parse_expr()
            self._expect(TokKind.OP, ")")
            return inner
        if self._accept(TokKind.OP, "{"):
            first = self.parse_expr()
            if self._accept(TokKind.OP, "{"):
                # Replication {N{expr}}
                inner = self.parse_expr()
                self._expect(TokKind.OP, "}")
                self._expect(TokKind.OP, "}")
                return Replicate(first, inner)
            parts = [first]
            while self._accept(TokKind.OP, ","):
                parts.append(self.parse_expr())
            self._expect(TokKind.OP, "}")
            return Concat(tuple(parts))
        if tok.kind is TokKind.IDENT:
            self._next()
            if self._accept(TokKind.OP, "("):
                args = []
                while not self._at(TokKind.OP, ")"):
                    args.append(self.parse_expr())
                    if not self._accept(TokKind.OP, ","):
                        break
                self._expect(TokKind.OP, ")")
                return FunctionCall(tok.text, tuple(args), tok.loc)
            if self._accept(TokKind.OP, "["):
                first = self.parse_expr()
                if self._accept(TokKind.OP, ":"):
                    lsb = self.parse_expr()
                    self._expect(TokKind.OP, "]")
                    return Slice(tok.text, first, lsb, tok.loc)
                self._expect(TokKind.OP, "]")
                return Index(tok.text, first, tok.loc)
            return Identifier(tok.text, tok.loc)

        raise ParseError(f"unexpected token '{tok.text or 'EOF'}' in expression", tok.loc)


def parse(source: str) -> SourceFile:
    """Parse mini-Verilog source into a :class:`SourceFile`."""
    return Parser(source).parse_source()


def parse_module(source: str, name: str | None = None) -> Module:
    """Parse source and return one module (the named one, or the only one)."""
    sf = parse(source)
    if name is not None:
        if name not in sf.modules:
            raise ParseError(f"module '{name}' not found in source")
        return sf.modules[name]
    if len(sf.modules) != 1:
        raise ParseError(f"expected exactly one module, found {len(sf.modules)}")
    return next(iter(sf.modules.values()))
