"""Sharded router tests: ring determinism, fairness, drain, byte-identity."""

import threading

import pytest

from repro.bench.harness import make_task
from repro.bench.problems import get_problem
from repro.llm.model import SimulatedLLM
from repro.obs import get_metrics
from repro.service import (BrokerConfig, LoadShedError, ServiceClient,
                           ServiceError, ShardedRouter, TenantShedError,
                           get_default_broker, reset_default_broker,
                           resolve_client)

MODELS = ("gpt-4", "chatgpt-3.5", "gpt-4o", "cl-verilog-34b", "rtlcoder-7b",
          "codev-7b", "verigen-codegen-16b", "codellama-34b-instruct",
          "codellama-34b-instruct-ft", "dave-gpt2")


def _cfg(**overrides):
    base = dict(request_timeout_s=None)
    base.update(overrides)
    return BrokerConfig(**base)


class StubProfile:
    def __init__(self, name):
        self.name = name


class BlockingBackend:
    """Backend whose calls block until released (in-flight control)."""

    def __init__(self, name="stub-model"):
        self.profile = StubProfile(name)
        self.release = threading.Event()
        self.started = threading.Event()

    def work(self, value):
        self.started.set()
        assert self.release.wait(timeout=10.0)
        return value


class TestRing:
    def test_mapping_is_deterministic_across_instances(self):
        with ShardedRouter(shards=4, config=_cfg()) as a, \
                ShardedRouter(shards=4, config=_cfg()) as b:
            assert [a.shard_for(m) for m in MODELS] \
                == [b.shard_for(m) for m in MODELS]

    def test_every_shard_serves_some_key(self):
        with ShardedRouter(shards=4, config=_cfg()) as router:
            names = [f"model-{i}" for i in range(200)]
            used = {router.shard_for(n) for n in names}
            assert used == {0, 1, 2, 3}

    def test_drain_moves_only_the_drained_shards_keys(self):
        with ShardedRouter(shards=4, config=_cfg()) as router:
            names = [f"model-{i}" for i in range(100)]
            before = {n: router.shard_for(n) for n in names}
            router.drain(2)
            after = {n: router.shard_for(n) for n in names}
            for name in names:
                if before[name] == 2:
                    assert after[name] != 2       # rebalanced away
                else:
                    assert after[name] == before[name]   # untouched

    def test_restart_restores_the_original_mapping(self):
        with ShardedRouter(shards=3, config=_cfg()) as router:
            before = {m: router.shard_for(m) for m in MODELS}
            router.drain(1)
            router.restart(1)
            assert {m: router.shard_for(m) for m in MODELS} == before

    def test_all_shards_draining_is_an_error(self):
        router = ShardedRouter(shards=2, config=_cfg())
        try:
            router.drain(0)
            router.drain(1)
            with pytest.raises(ServiceError, match="no alive shards"):
                router.shard_for("gpt-4")
        finally:
            router.shutdown()


class TestRouterMechanics:
    def test_call_routes_to_the_hashed_shard(self):
        backend = BlockingBackend("gpt-4")
        backend.release.set()
        with ShardedRouter(shards=4, config=_cfg()) as router:
            assert router.call(backend, "work", (21,)) == 21
            idx = router.shard_for("gpt-4")
            shard = router.shards()[idx]
            assert shard.lane_names() == ["gpt-4"]
            assert router.lane_names() == ["gpt-4"]
            others = [s for i, s in enumerate(router.shards()) if i != idx]
            assert all(s.lane_names() == [] for s in others)
            snap = get_metrics().snapshot()
            assert snap["counters"][f"service.shard.{idx}.requests"] >= 1
            assert f"service.shard.{idx}.inflight" in snap["gauges"]

    def test_drain_finishes_queued_work_then_rebalances(self):
        backend = BlockingBackend("gpt-4")
        with ShardedRouter(shards=3, config=_cfg(max_batch=1)) as router:
            idx = router.shard_for("gpt-4")
            queued = router.submit(backend, "work", (7,))
            assert backend.started.wait(timeout=5.0)

            done = threading.Event()

            def drainer():
                router.drain(idx)
                done.set()

            thread = threading.Thread(target=drainer)
            thread.start()
            backend.release.set()
            assert done.wait(timeout=10.0)
            thread.join(timeout=5.0)
            # The queued request finished (not stranded, not failed)...
            assert queued.result(timeout=5.0) == 7
            # ...and the model's keys now live on a different shard.
            new_idx = router.shard_for("gpt-4")
            assert new_idx != idx
            assert router.call(backend, "work", (8,)) == 8

    def test_submit_after_shutdown_raises(self):
        backend = BlockingBackend("gpt-4")
        router = ShardedRouter(shards=2, config=_cfg())
        router.shutdown()
        with pytest.raises(ServiceError):
            router.submit(backend, "work", (1,))


class TestTenantFairness:
    def test_hog_tenant_is_shed_while_others_are_admitted(self):
        backend = BlockingBackend("gpt-4")
        cfg = _cfg(queue_capacity=8, max_batch=1)
        with ShardedRouter(shards=1, config=cfg,
                           tenant_share=0.25) as router:
            cap = max(1, int(0.25 * 8))       # 2 in-flight per tenant
            admitted = [router.submit(backend, "work", (i,), tenant="hog")
                        for i in range(cap)]
            with pytest.raises(TenantShedError):
                router.submit(backend, "work", (99,), tenant="hog")
            # Another tenant still gets through; anonymous traffic too.
            other = router.submit(backend, "work", (50,), tenant="polite")
            anon = router.submit(backend, "work", (60,))
            backend.release.set()
            for future in admitted + [other, anon]:
                assert future.result(timeout=10.0) is not None
            snap = get_metrics().snapshot()["counters"]
            assert snap.get("service.tenant_shed", 0) >= 1
            # Completion released the share: the hog may submit again.
            again = router.submit(backend, "work", (100,), tenant="hog")
            assert again.result(timeout=10.0) == 100

    def test_share_of_one_disables_admission_control(self):
        backend = BlockingBackend("gpt-4")
        backend.release.set()
        with ShardedRouter(shards=1, config=_cfg(),
                           tenant_share=1.0) as router:
            futures = [router.submit(backend, "work", (i,), tenant="hog")
                       for i in range(20)]
            assert all(f.result(timeout=10.0) is not None for f in futures)

    def test_failed_submit_refunds_the_tenant_slot(self):
        backend = BlockingBackend("gpt-4")
        cfg = _cfg(queue_capacity=1, max_batch=1)
        with ShardedRouter(shards=1, config=cfg,
                           tenant_share=0.9) as router:
            # Anonymous traffic (exempt from admission) saturates the lane:
            # one executing, one queued (queue_capacity=1).
            first = router.submit(backend, "work", (1,))
            assert backend.started.wait(timeout=5.0)
            second = router.submit(backend, "work", (2,))
            # The tenant passes admission but is shed by the full lane
            # queue; the failed submit must refund its in-flight slot.
            with pytest.raises(LoadShedError):
                router.submit(backend, "work", (3,), tenant="t")
            assert router._inflight_by_tenant.get("t") is None
            backend.release.set()
            assert first.result(timeout=10.0) == 1
            assert second.result(timeout=10.0) == 2
        assert router._inflight_by_tenant == {}


class TestServiceReport:
    def test_service_table_renders_router_metrics(self):
        from repro import obs
        from repro.obs import report
        backend = BlockingBackend("gpt-4")
        backend.release.set()
        with ShardedRouter(shards=2, config=_cfg()) as router:
            assert router.call(backend, "work", (5,)) == 5
        snap = obs.get_metrics().snapshot()
        records = [dict(snap, type="metrics")]
        table = report.service_table(records)
        assert "service.requests" in table
        assert ".requests" in table           # per-shard counter row
        assert table in report.render(records)
        assert report.service_table([]) == ""


class TestShardedDeterminism:
    """N shards must be byte-identical to 1 shard and to the direct path."""

    def test_nshard_sweep_matches_direct(self):
        task = make_task(get_problem("c2_absdiff"))
        direct = {m: SimulatedLLM(m, seed=11) for m in MODELS[:4]}
        want = {m: [direct[m].generate(task, sample_index=i)
                    for i in range(3)] for m in direct}
        for shards in (1, 2, 4):
            with ShardedRouter(shards=shards, config=_cfg()) as router:
                backends = {m: SimulatedLLM(m, seed=11) for m in direct}
                clients = {m: ServiceClient(backends[m], broker=router)
                           for m in direct}
                got = {m: [clients[m].generate(task, sample_index=i)
                           for i in range(3)] for m in direct}
            assert got == want, f"divergence at {shards} shards"
            for m in direct:
                assert backends[m].usage == direct[m].usage

    def test_env_shards_resolve_to_router(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE", "1")
        monkeypatch.setenv("REPRO_SERVICE_SHARDS", "3")
        reset_default_broker()
        try:
            client = resolve_client("gpt-4", seed=0)
            assert isinstance(client, ServiceClient)
            assert isinstance(client.broker, ShardedRouter)
            assert client.broker.num_shards == 3
            task = make_task(get_problem("c2_gray"))
            direct = SimulatedLLM("gpt-4", seed=0)
            assert client.generate(task) == direct.generate(task)
        finally:
            reset_default_broker()

    def test_default_broker_stays_single_without_shards(self, monkeypatch):
        from repro.service import ModelBroker
        monkeypatch.delenv("REPRO_SERVICE_SHARDS", raising=False)
        reset_default_broker()
        try:
            assert isinstance(get_default_broker(), ModelBroker)
        finally:
            reset_default_broker()
