"""Tests for the simulated-LLM substrate: tokenizer, faults, model, RAG."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.llm import (AUTOCHIP_EVAL_MODELS, Document, GenerationTask,
                       ModelProfile, Prompt, PromptStrategy, SimulatedLLM,
                       VectorIndex, count_tokens, fault_by_id, get_model,
                       jaccard_similarity, list_models, normalized_levenshtein,
                       prompt_effects, token_levenshtein, tokenize_text)
from repro.llm.faults import ALL_FAULTS, LOGIC_FAULTS, SYNTAX_FAULTS

REF = """module counter(input clk, input rst, output reg [3:0] q);
  wire [3:0] next;
  assign next = q + 1;
  always @(posedge clk) begin
    if (rst) q <= 0;
    else q <= next;
  end
endmodule
"""

TASK = GenerationTask("counter", "a 4-bit counter", REF, complexity=2)


class TestTokenizer:
    def test_tokenize_code(self):
        toks = tokenize_text("assign y = a + 8'hFF; // note")
        assert "assign" in toks and "8'hFF" in toks
        assert "//" not in " ".join(toks)

    def test_count_tokens(self):
        assert count_tokens("a b c") == 3

    def test_levenshtein_identity(self):
        assert token_levenshtein(REF, REF) == 0

    def test_levenshtein_symmetric(self):
        a, b = "assign y = a + b;", "assign y = a - c;"
        assert token_levenshtein(a, b) == token_levenshtein(b, a)

    def test_levenshtein_counts_token_edits(self):
        assert token_levenshtein("a + b", "a - b") == 1

    def test_levenshtein_limit_banding(self):
        long_a = "x " * 200
        long_b = "y " * 400
        assert token_levenshtein(long_a, long_b, limit=10) == 11

    @given(st.text(alphabet="ab +-;", max_size=30),
           st.text(alphabet="ab +-;", max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_levenshtein_triangle_inequality_with_empty(self, a, b):
        # d(a,b) <= d(a,"") + d("",b) = len(a)+len(b)
        assert token_levenshtein(a, b) \
            <= len(tokenize_text(a)) + len(tokenize_text(b))

    def test_normalized_range(self):
        assert 0.0 <= normalized_levenshtein("a b c", "a x c") <= 1.0

    def test_jaccard_bounds(self):
        assert jaccard_similarity(REF, REF) == 1.0
        assert jaccard_similarity("a b c d e", "v w x y z") == 0.0


class TestRegistryAndProfiles:
    def test_known_models_present(self):
        names = list_models()
        for expected in ("dave-gpt2", "verigen-codegen-16b", "gpt-4",
                         "gpt-4o", "codellama-34b-instruct-ft"):
            assert expected in names

    def test_unknown_model_suggests(self):
        with pytest.raises(KeyError):
            get_model("gpt-99")

    def test_autochip_models_exist(self):
        for name in AUTOCHIP_EVAL_MODELS:
            assert get_model(name)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            ModelProfile("bad", "x", 1.0, True, 1.5, 0.5, 0.5, 0.5, 0.5,
                         0.5, 0.5, 0.5, 0.5, 4, 2024)

    def test_finetuning_is_strict_upgrade(self):
        base = get_model("codellama-34b-instruct")
        ft = get_model("codellama-34b-instruct-ft")
        assert ft.syntax_reliability > base.syntax_reliability
        assert ft.semantic_reliability > base.semantic_reliability

    def test_evolution_ordering(self):
        """Section IV history: DAVE < VeriGen ~ GPT-4 on Verilog quality."""
        dave = get_model("dave-gpt2").effective_verilog_quality()
        verigen = get_model("verigen-codegen-16b").effective_verilog_quality()
        gpt4 = get_model("gpt-4").effective_verilog_quality()
        assert dave < verigen
        assert abs(verigen - gpt4) < 0.15
        assert get_model("verigen-codegen-16b").params_b \
            < get_model("gpt-4").params_b / 10

    def test_scaled_override(self):
        p = get_model("gpt-4").scaled(feedback_comprehension=0.1)
        assert p.feedback_comprehension == 0.1


class TestFaults:
    def test_every_fault_has_unique_id(self):
        ids = [f.fault_id for f in ALL_FAULTS]
        assert len(ids) == len(set(ids))

    def test_syntax_faults_break_compilation(self):
        import random
        from repro.hdl import parse, HdlError
        broken = 0
        for fault in SYNTAX_FAULTS:
            mutated = fault.apply(REF, random.Random(3))
            if mutated is None:
                continue
            try:
                parse(mutated)
            except HdlError:
                broken += 1
        assert broken >= 2

    def test_logic_faults_keep_compiling_mostly(self):
        import random
        from repro.hdl import parse, HdlError
        compiling = 0
        applied = 0
        for fault in LOGIC_FAULTS:
            mutated = fault.apply(REF, random.Random(3))
            if mutated is None or mutated == REF:
                continue
            applied += 1
            try:
                parse(mutated)
                compiling += 1
            except HdlError:
                pass
        assert applied > 0
        assert compiling >= applied - 1

    def test_fault_by_id(self):
        assert fault_by_id("off_by_one").klass == "logic"


class TestSimulatedLLM:
    def test_determinism(self):
        a = SimulatedLLM("gpt-4", seed=3).generate(TASK, sample_index=2)
        b = SimulatedLLM("gpt-4", seed=3).generate(TASK, sample_index=2)
        assert a.text == b.text and a.faults == b.faults

    def test_samples_differ(self):
        llm = SimulatedLLM("gpt-4", seed=3)
        texts = {llm.generate(TASK, temperature=1.0, sample_index=i).text
                 for i in range(6)}
        assert len(texts) > 1

    def test_ledger_matches_damage(self):
        llm = SimulatedLLM("dave-gpt2", seed=1)
        for i in range(10):
            g = llm.generate(TASK, sample_index=i)
            if not g.faults:
                # Style variation aside, the module must still behave: quick
                # structural check that the text parses.
                from repro.hdl import parse
                parse(g.text)

    def test_capability_ordering_on_clean_rate(self):
        def clean_rate(model):
            llm = SimulatedLLM(model, seed=5)
            return sum(not llm.generate(TASK, sample_index=i).faults
                       for i in range(40)) / 40

        assert clean_rate("gpt-4o") > clean_rate("dave-gpt2")

    def test_complexity_raises_fault_rate(self):
        hard = GenerationTask("hard", "spec", REF, complexity=5)
        llm = SimulatedLLM("chatgpt-3.5", seed=2)
        easy_clean = sum(not llm.generate(TASK, sample_index=i).faults
                         for i in range(30))
        hard_clean = sum(not llm.generate(hard, sample_index=i).faults
                         for i in range(30))
        assert hard_clean <= easy_clean

    def test_temperature_raises_fault_rate(self):
        llm = SimulatedLLM("chatgpt-3.5", seed=2)
        cold = sum(bool(llm.generate(TASK, temperature=0.1,
                                     sample_index=i).faults)
                   for i in range(30))
        hot = sum(bool(llm.generate(TASK, temperature=1.3,
                                    sample_index=i).faults)
                  for i in range(30))
        assert hot >= cold

    def test_open_ended_needs_spec_comprehension(self):
        open_task = GenerationTask("open", "spec", REF, complexity=3,
                                   open_ended=True)
        weak = SimulatedLLM("dave-gpt2", seed=4)
        miss = sum(weak.generate(open_task, sample_index=i).misinterpreted
                   for i in range(30))
        strong = SimulatedLLM("gpt-4o", seed=4)
        miss_strong = sum(strong.generate(open_task,
                                          sample_index=i).misinterpreted
                          for i in range(30))
        assert miss > miss_strong

    def test_refine_reduces_faults_for_strong_model(self):
        llm = SimulatedLLM("gpt-4o", seed=6)
        # Find a faulty sample.
        g = None
        for i in range(40):
            g = llm.generate(TASK, temperature=1.2, sample_index=i)
            if len(g.faults) >= 1:
                break
        assert g is not None and g.faults
        fixed = 0
        trials = 12
        for i in range(trials):
            refined = llm.refine(TASK, g, "COMPILE ERROR: syntax error near "
                                          "';' FAIL", sample_index=i)
            if len(refined.faults) < len(g.faults):
                fixed += 1
        assert fixed >= trials // 3

    def test_weak_model_ignores_feedback(self):
        strong = SimulatedLLM("gpt-4o", seed=8)
        weak = SimulatedLLM("dave-gpt2", seed=8)

        def fix_rate(llm):
            g = None
            for i in range(60):
                g = llm.generate(TASK, temperature=1.2, sample_index=i)
                if g.faults and fault_by_id(g.faults[0][0]).klass == "logic":
                    break
            assert g is not None
            improved = 0
            for i in range(12):
                r = llm.refine(TASK, g, "simulation FAIL: expected 3 got 4",
                               sample_index=i)
                improved += len(r.faults) < len(g.faults)
            return improved

        assert fix_rate(strong) > fix_rate(weak)

    def test_human_fix_strictly_reduces(self):
        llm = SimulatedLLM("chatgpt-3.5", seed=9)
        g = None
        for i in range(50):
            g = llm.generate(TASK, temperature=1.2, sample_index=i)
            if len(g.faults) >= 2:
                break
        assert g is not None and len(g.faults) >= 2
        fixed = llm.apply_human_fix(TASK, g)
        assert len(fixed.faults) < len(g.faults)

    def test_usage_accounting(self):
        llm = SimulatedLLM("gpt-4", seed=0)
        before = llm.usage.total_tokens
        llm.generate(TASK)
        assert llm.usage.total_tokens > before
        assert llm.usage.calls >= 1

    def test_refine_is_stable_across_hash_seeds(self):
        # Regression: refine() once seeded its RNG from hash(feedback),
        # which PYTHONHASHSEED randomizes per interpreter — so the "same"
        # repair loop produced different generations on different runs.
        # Replay the loop in two subprocesses with different hash seeds
        # and require byte-identical outcomes.
        import os
        import subprocess
        import sys

        script = """
import hashlib
from repro.llm import GenerationTask, SimulatedLLM

REF = '''%s'''
task = GenerationTask("counter", "a 4-bit counter", REF, complexity=2)
llm = SimulatedLLM("chatgpt-3.5", seed=9)
digest = hashlib.sha256()
for i in range(8):
    g = llm.generate(task, temperature=1.2, sample_index=i)
    r = llm.refine(task, g, "simulation FAIL: expected 3 got 4",
                   temperature=0.9, sample_index=i)
    digest.update(r.text.encode())
    digest.update(repr(r.faults).encode())
    digest.update(repr(r.misinterpreted).encode())
print(digest.hexdigest())
""" % REF

        src_dir = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src")

        def run(hash_seed: str) -> str:
            env = dict(os.environ, PYTHONHASHSEED=hash_seed,
                       PYTHONPATH=src_dir)
            out = subprocess.run([sys.executable, "-c", script], env=env,
                                 capture_output=True, text=True, timeout=120)
            assert out.returncode == 0, out.stderr
            return out.stdout.strip()

        assert run("0") == run("12345")


class TestPromptsAndRag:
    def test_scot_improves_semantics(self):
        profile = get_model("codellama-34b-instruct-ft")
        direct = prompt_effects(profile, Prompt("s"), 3)
        scot = prompt_effects(profile,
                              Prompt("s", strategy=PromptStrategy.SCOT), 3)
        assert scot.semantic_factor < direct.semantic_factor
        assert scot.extra_calls == 1

    def test_hierarchical_reduces_complexity_only_when_complex(self):
        profile = get_model("gpt-4")
        simple = prompt_effects(profile, Prompt(
            "s", strategy=PromptStrategy.HIERARCHICAL), 1)
        complex_ = prompt_effects(profile, Prompt(
            "s", strategy=PromptStrategy.HIERARCHICAL), 5)
        assert simple.effective_complexity_delta == 0
        assert complex_.effective_complexity_delta < 0

    def test_examples_capped_by_context(self):
        profile = get_model("dave-gpt2")  # context_items = 1
        few = prompt_effects(profile, Prompt("s", examples=("e",)), 2)
        many = prompt_effects(profile, Prompt("s", examples=("e",) * 8), 2)
        assert few.semantic_factor == pytest.approx(many.semantic_factor)

    def test_prompt_render_contains_sections(self):
        p = Prompt("build an adder", strategy=PromptStrategy.SCOT,
                   examples=("ex1",), context_docs=("doc1",),
                   feedback="FAIL", system="sys")
        text = p.render()
        for token in ("[SYSTEM]", "[CONTEXT 1]", "[EXAMPLE 1]", "[TASK]",
                      "[TOOL FEEDBACK]", "pseudocode"):
            assert token in text

    def test_vector_index_ranks_relevant_first(self):
        index = VectorIndex()
        index.add(Document("mem", "malloc free heap dynamic memory array"))
        index.add(Document("loop", "while loop bound trip count iteration"))
        index.add(Document("io", "printf stdout logging remove"))
        hits = index.query("fix the malloc heap usage", top_k=2)
        assert hits[0].document.doc_id == "mem"

    def test_vector_index_empty(self):
        assert VectorIndex().query("anything") == []

    def test_vector_index_incremental_add(self):
        index = VectorIndex()
        index.add(Document("a", "alpha beta"))
        assert index.query("alpha")[0].document.doc_id == "a"
        index.add(Document("b", "gamma delta"))
        assert index.query("gamma delta")[0].document.doc_id == "b"
