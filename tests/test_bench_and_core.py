"""Tests for the benchmark suite, pass@k harness, and the unified agent."""

import pytest

from repro.bench import (all_problems, evaluate_candidate, evaluate_model,
                         get_problem, make_task, problems_by)
from repro.core import (AgentConfig, EdaAgent, agent_report_text,
                        format_table, run_agent_sweep, sweep_report_text)
from repro.hdl import run_testbench
from repro.llm import PromptStrategy


class TestProblemSuite:
    @pytest.mark.parametrize("problem", all_problems(),
                             ids=lambda p: p.problem_id)
    def test_reference_passes_its_testbench(self, problem):
        result = run_testbench(problem.reference + "\n" + problem.testbench,
                               problem.tb_name)
        assert result.passed, result.feedback()

    def test_suite_spans_complexities(self):
        levels = {p.complexity for p in all_problems()}
        assert levels == {1, 2, 3, 4, 5}

    def test_filters(self):
        seq = problems_by(sequential=True)
        assert seq and all(p.sequential for p in seq)
        c1 = problems_by(complexity=1)
        assert all(p.complexity == 1 for p in c1)

    def test_get_problem_unknown(self):
        with pytest.raises(KeyError):
            get_problem("nope")

    def test_make_task_carries_metadata(self):
        p = get_problem("c5_accumulator_cpu")
        task = make_task(p)
        assert task.open_ended and task.complexity == 5

    def test_broken_candidate_scores_below_one(self):
        p = get_problem("c2_gray")
        broken = p.reference.replace("b ^ (b >> 1)", "b | (b >> 1)")
        result = evaluate_candidate(p, broken)
        assert result.compiled and not result.passed


class TestHarness:
    def test_pass_at_k_monotone_in_k(self):
        probs = problems_by(complexity=2)[:3]
        suite = evaluate_model("chatgpt-3.5", probs, k=4, seed=3)
        assert suite.pass_at_k(1) <= suite.pass_at_k(2) <= suite.pass_at_k(4)

    def test_by_complexity_buckets(self):
        probs = [get_problem("c1_mux2"), get_problem("c3_alu")]
        suite = evaluate_model("gpt-4", probs, k=1, seed=0)
        buckets = suite.by_complexity()
        assert set(buckets) == {1, 3}

    def test_strategy_recorded(self):
        suite = evaluate_model("gpt-4", [get_problem("c1_mux2")], k=1,
                               strategy=PromptStrategy.COT, seed=0)
        assert suite.strategy is PromptStrategy.COT

    def test_mean_best_score_range(self):
        suite = evaluate_model("dave-gpt2", [get_problem("c1_and4")], k=2,
                               seed=1)
        assert 0.0 <= suite.mean_best_score <= 1.0


class TestAgent:
    def test_agent_full_pipeline(self):
        agent = EdaAgent(AgentConfig(model="gpt-4o"), seed=1)
        report = agent.run(get_problem("c2_gray"))
        stages = [s for s, _, _ in report.stage_table()]
        assert "specification" in stages and "qor" in stages
        if report.success:
            assert report.state.verified
            assert report.state.ppa is not None
            assert "netlist" in report.state.modalities_present()

    def test_agent_report_text_renders(self):
        agent = EdaAgent(AgentConfig(model="gpt-4o"), seed=1)
        report = agent.run(get_problem("c1_mux2"))
        text = agent_report_text(report)
        assert "stage" in text and "specification" in text

    def test_feedback_reopens_rtl_stage(self):
        # A weak model on a hard problem should need reopens (or fail).
        agent = EdaAgent(AgentConfig(model="chatgpt-3.5", autochip_k=1,
                                     autochip_depth=1), seed=3)
        report = agent.run(get_problem("c4_seqdet"))
        assert report.reopens >= 0  # bounded
        assert report.reopens <= agent.config.max_reopens

    def test_sweep_statistics(self):
        sweep = run_agent_sweep([get_problem("c1_mux2"),
                                 get_problem("c2_gray")],
                                model="gpt-4o", seeds=(0,))
        assert 0.0 <= sweep.end_to_end_rate <= 1.0
        rates = sweep.stage_success_rates()
        assert "rtl_generation" in rates
        assert sweep_report_text(sweep)

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", "y"], ["long", "z"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) <= 2
