"""Registry + CLI tests, including unified-signature conformance."""

import dataclasses
import inspect
import pickle

import pytest

from repro.bench.problems import get_problem
from repro.flows import FlowSpec, RunRequest, get_flow, list_flows, run_flow
from repro.flows.__main__ import main as flows_cli
from repro.store import CampaignJournal, DiskStore


class TestRegistry:
    def test_every_paper_flow_registered(self):
        names = {spec.name for spec in list_flows()}
        assert names == {"autochip", "structured", "vrank", "chipchat",
                         "crosscheck", "hierarchical", "assertgen",
                         "autobench", "security", "agent"}

    def test_unknown_flow_lists_known_names(self):
        with pytest.raises(KeyError, match="known flows.*vrank"):
            get_flow("nope")

    def test_specs_are_complete(self):
        for spec in list_flows():
            assert isinstance(spec, FlowSpec)
            assert callable(spec.entry)
            assert isinstance(spec.result_type, type)
            assert spec.summary
            assert spec.runner is not None


class TestSignatureConformance:
    """Every registered entry point follows the unified flow API:
    ``model`` accepts the str/client union, and ``seed``/``seeds`` and
    ``jobs`` are keyword-only."""

    def test_model_parameter_present_where_used(self):
        for spec in list_flows():
            params = inspect.signature(spec.entry).parameters
            if spec.uses_model:
                assert "model" in params, spec.name
            else:
                assert "model" not in params, spec.name

    def test_seed_and_jobs_are_keyword_only(self):
        for spec in list_flows():
            params = inspect.signature(spec.entry).parameters
            seed_params = [p for name, p in params.items()
                           if name in ("seed", "seeds")]
            assert seed_params, spec.name
            for param in seed_params:
                assert param.kind is inspect.Parameter.KEYWORD_ONLY, spec.name
            assert "jobs" in params, spec.name
            assert params["jobs"].kind is inspect.Parameter.KEYWORD_ONLY, \
                spec.name

    def test_model_accepts_client_instances(self):
        """The annotation documents the union (str | SimulatedLLM |
        LLMClient) everywhere a model parameter exists."""
        for spec in list_flows():
            if not spec.uses_model:
                continue
            params = inspect.signature(spec.entry).parameters
            annotation = str(params["model"].annotation)
            assert "LLMClient" in annotation, spec.name


class TestRunRequest:
    """Typed launches: every runner consumes one keyword-only request."""

    def test_fields_are_keyword_only(self):
        problems = [get_problem("c1_mux2")]
        with pytest.raises(TypeError):
            RunRequest(problems)  # positional launch args are gone
        request = RunRequest(problems=problems, seed=3)
        assert request.seed == 3
        assert request.model == "gpt-4"
        assert request.jobs is None
        assert request.budget is None
        assert request.store is None

    def test_request_is_frozen(self):
        request = RunRequest(problems=[get_problem("c1_mux2")])
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.seed = 1

    def test_runners_take_exactly_one_request(self):
        for spec in list_flows():
            params = inspect.signature(spec.runner).parameters
            assert len(params) == 1, spec.name

    def test_launch_rejects_budget_on_unsupported_flow(self):
        from repro.engine import Budget
        spec = get_flow("vrank")
        request = RunRequest(problems=[get_problem("c1_mux2")],
                             budget=Budget(max_evals=1))
        with pytest.raises(ValueError, match="does not support"):
            spec.launch(request)

    def test_fingerprint_excludes_jobs(self):
        problems = [get_problem("c1_mux2")]
        serial = RunRequest(problems=problems, seed=2, jobs=None)
        fanned = RunRequest(problems=problems, seed=2, jobs=4)
        assert serial.fingerprint_parts() == fanned.fingerprint_parts()

    def test_launch_with_store_checkpoints_and_resumes(self, tmp_path):
        """A flow launched with a journal writes checkpoints, and the
        resumed launch replays them into identical results."""
        problems = [get_problem("c1_mux2")]
        fresh = run_flow("security", problems, seed=0)

        store = DiskStore(str(tmp_path))
        spec = get_flow("security")
        campaign = ("flow", "security") + RunRequest(
            problems=problems, seed=0).fingerprint_parts()
        writer = CampaignJournal(store, campaign)
        spec.launch(RunRequest(problems=problems, seed=0, store=writer))
        assert writer.written > 0

        reader = CampaignJournal(store, campaign, resume=True)
        resumed = spec.launch(RunRequest(problems=problems, seed=0,
                                         store=reader))
        assert reader.restored == writer.written
        assert pickle.dumps(resumed) == pickle.dumps(fresh)


class TestRunFlow:
    def test_run_flow_returns_declared_type(self):
        problems = [get_problem("c1_mux2")]
        result = run_flow("vrank", problems, "chatgpt-3.5", seed=0)
        assert isinstance(result, get_flow("vrank").result_type)

    def test_run_flow_without_model(self):
        problems = [get_problem("c1_mux2")]
        result = run_flow("security", problems, seed=0)
        assert isinstance(result, dict)


class TestCli:
    def test_list_smoke(self, capsys):
        assert flows_cli(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("autochip", "vrank", "security"):
            assert name in out

    def test_bare_invocation_lists(self, capsys):
        assert flows_cli([]) == 0
        assert "structured" in capsys.readouterr().out

    def test_unknown_flow_is_an_error(self, capsys):
        assert flows_cli(["bogus"]) == 2
        assert "known flows" in capsys.readouterr().err

    def test_runs_one_flow(self, capsys):
        code = flows_cli(["hierarchical", "--model", "cl-verilog-34b",
                          "--problems", "c1_mux2", "--seed", "1"])
        assert code == 0
        assert "c1_mux2" in capsys.readouterr().out
