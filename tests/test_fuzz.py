"""Tests for the differential fuzzing subsystem (repro.fuzz)."""

from __future__ import annotations

import dataclasses

import pytest

from repro import obs
from repro.fuzz import (FuzzConfig, OracleReport, generate_case,
                        generate_cases, run_campaign, run_oracles,
                        shrink_case, write_corpus_entry)
from repro.fuzz.__main__ import main as fuzz_main
from repro.fuzz.oracles import oracle_cache, oracle_roundtrip, oracle_synth
from repro.fuzz.runner import TB_SEPARATOR, FuzzFinding
from repro.hdl import parse, run_testbench, strip_locations, unparse
from repro.bench.problems import all_problems


class TestGenerator:
    def test_case_stream_is_deterministic(self):
        first = [(c.dut_source, c.tb_source)
                 for c in generate_cases(9, 10)]
        second = [(c.dut_source, c.tb_source)
                  for c in generate_cases(9, 10)]
        assert first == second

    def test_cases_vary_across_indices_and_seeds(self):
        sources = {generate_case(1, i).dut_source for i in range(10)}
        assert len(sources) > 5
        assert generate_case(1, 0).dut_source != generate_case(2, 0).dut_source

    def test_generated_cases_simulate_to_pass(self):
        for i in range(8):
            case = generate_case(3, i)
            result = run_testbench(case.dut_source, case.top,
                                   max_time=10_000, seed=1,
                                   tb_source=case.tb_source)
            problem = (result.compile_error or result.runtime_error
                       or result.output)
            assert result.passed, f"case {i}: {problem}"

    def test_feature_mix_is_reachable(self):
        cases = list(generate_cases(5, 60))
        assert any(c.sequential for c in cases)
        assert any(c.hierarchical for c in cases)
        assert any(not c.sequential and not c.hierarchical for c in cases)

    def test_config_controls_width(self):
        narrow = FuzzConfig(max_width=1)
        for i in range(5):
            case = generate_case(11, i, narrow)
            for line in case.dut_source.splitlines():
                if line.startswith("module "):
                    assert "[" not in line, "scalar-only config grew a vector"


class TestUnparser:
    def test_roundtrip_on_benchmark_designs(self):
        for problem in all_problems()[:6]:
            for source in (problem.reference, problem.testbench):
                first = strip_locations(parse(source))
                text = unparse(first)
                assert strip_locations(parse(text)) == first
                assert unparse(strip_locations(parse(text))) == text


class TestOracles:
    def test_all_oracles_agree_on_fresh_cases(self):
        for i in range(6):
            reports = run_oracles(generate_case(21, i))
            assert len(reports) == 7
            for report in reports:
                assert not report.divergence, \
                    f"case {i} [{report.name}/{report.kind}]: {report.detail}"

    def test_synth_oracle_skips_sequential(self):
        case = next(c for c in generate_cases(5, 60) if c.sequential)
        report = oracle_synth(case)
        assert report.skipped and report.ok

    def test_synth_oracle_flags_out_of_subset_design(self):
        # Division by a non-power-of-two is outside the synthesizable
        # subset; if the generator ever emits it, the oracle must flag it.
        case = dataclasses.replace(
            generate_case(1, 0), sequential=False, hierarchical=False,
            dut_source="module fz_dut(input [3:0] a, output [3:0] y);\n"
                       "  assign y = a / 3;\nendmodule\n")
        report = oracle_synth(case)
        assert report.divergence
        assert report.kind.startswith("synth-error")

    def test_roundtrip_oracle_flags_unparseable(self):
        case = dataclasses.replace(
            generate_case(1, 1), dut_source="module broken(\n")
        report = oracle_roundtrip(case)
        assert report.divergence and report.kind == "reparse-error"

    def test_cache_oracle_accepts_clean_case(self):
        report = oracle_cache(generate_case(1, 2))
        assert report.ok and not report.skipped


class TestShrinker:
    def test_shrinks_synthetic_failure(self):
        def pred(dut, tb):
            parse(dut)
            parse(tb)
            return "^" in dut

        case = next(c for c in generate_cases(2, 40) if "^" in c.dut_source)
        result = shrink_case(case, pred)
        assert "^" in result.dut_source
        assert len(result.dut_source) < len(case.dut_source)
        assert len(result.tb_source) < len(case.tb_source)
        assert result.rounds > 0

    def test_shrunk_output_still_parses(self):
        def pred(dut, tb):
            parse(dut)
            parse(tb)
            return "?" in dut

        case = next(c for c in generate_cases(3, 40) if "?" in c.dut_source)
        result = shrink_case(case, pred, max_checks=150)
        parse(result.dut_source)
        parse(result.tb_source)

    def test_budget_is_respected(self):
        def pred(dut, tb):
            return True

        case = generate_case(1, 0)
        result = shrink_case(case, pred, max_checks=10)
        assert result.checks <= 10


class TestCampaign:
    def test_clean_campaign(self, tmp_path):
        result = run_campaign(10, 1, corpus_dir=str(tmp_path))
        assert result.ok
        assert result.cases_run == 10
        assert result.oracle_runs == 70
        assert list(tmp_path.iterdir()) == []

    def test_campaign_summary_shape(self):
        result = run_campaign(3, 2, corpus_dir=None)
        summary = result.summary()
        assert summary["cases_run"] == 3
        assert summary["divergences"] == 0

    def test_finding_written_to_corpus(self, tmp_path):
        case = generate_case(1, 0)
        finding = FuzzFinding(
            case=case,
            report=OracleReport("synth", ok=False, kind="cec-mismatch",
                                detail="outputs ['out0'] diverge"),
            shrunk_dut=case.dut_source, shrunk_tb=case.tb_source)
        path = write_corpus_entry(finding, str(tmp_path))
        text = open(path, encoding="utf-8").read()
        assert TB_SEPARATOR in text
        assert f"--seed {case.campaign_seed} --replay {case.index}" in text
        assert "oracle=synth" in text and "kind=cec-mismatch" in text

    def test_campaign_emits_metrics_when_traced(self):
        sink = obs.InMemorySink()
        obs.install_tracer(obs.Tracer(sink, enabled=True))
        obs.reset_metrics()
        try:
            run_campaign(2, 1, corpus_dir=None)
            metrics = obs.get_metrics()
            assert metrics.counter("fuzz.cases").value == 2
            assert metrics.counter("fuzz.oracle_runs").value == 14
            names = [r["name"] for r in sink.records
                     if r.get("type") == "span"]
            assert "fuzz.case" in names
        finally:
            obs.reset_tracer()
            obs.reset_metrics()

    def test_campaign_untraced_emits_nothing(self):
        obs.reset_tracer()
        obs.reset_metrics()
        run_campaign(2, 1, corpus_dir=None)
        assert obs.get_metrics().counter("fuzz.cases").value == 0


class TestCli:
    def test_smoke(self, capsys):
        assert fuzz_main(["--budget", "5", "--seed", "2", "--no-corpus",
                          "--quiet"]) == 0
        out = capsys.readouterr().out
        assert '"divergences": 0' in out

    def test_show(self, capsys):
        assert fuzz_main(["--seed", "4", "--show", "17"]) == 0
        out = capsys.readouterr().out
        assert "module fz_dut" in out and "module tb" in out

    def test_replay_clean_case(self, capsys):
        assert fuzz_main(["--seed", "4", "--replay", "17"]) == 0
        out = capsys.readouterr().out
        assert "roundtrip" in out

    def test_oracle_subset(self, capsys):
        assert fuzz_main(["--budget", "3", "--seed", "1", "--no-corpus",
                          "--quiet", "--oracles", "roundtrip,cache"]) == 0
        out = capsys.readouterr().out
        assert '"oracle_runs": 6' in out

    def test_unknown_oracle_rejected(self):
        with pytest.raises(SystemExit):
            fuzz_main(["--budget", "1", "--oracles", "nope"])

    def test_bad_budget_rejected(self):
        with pytest.raises(SystemExit):
            fuzz_main(["--budget", "0", "--no-corpus"])

    def test_bad_seed_value_rejected(self):
        with pytest.raises(SystemExit):
            fuzz_main(["--seed", "not-a-number"])


@pytest.mark.slow
class TestCampaignSlow:
    def test_two_hundred_cases_clean(self):
        result = run_campaign(200, 4, corpus_dir=None)
        assert result.ok, [f.describe() for f in result.findings]

    def test_replay_matches_campaign_stream(self):
        stream = [(c.dut_source, c.tb_source) for c in generate_cases(4, 50)]
        replayed = [(generate_case(4, i).dut_source,
                     generate_case(4, i).tb_source) for i in range(50)]
        assert stream == replayed
