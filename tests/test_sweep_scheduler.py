"""The sweep scheduler (:class:`repro.exec.SweepScheduler`).

Satellite of the run-engine PR: sweeps route through one scheduler that
pipelines generation/evaluation across (problem, seed) cells.  The
contract under test is *byte-identity* — scheduling is an execution
detail, never a statistics change.
"""

from __future__ import annotations

import pytest

from repro.bench.problems import get_problem
from repro.exec import SweepScheduler, sweep_map
from repro.flows.autochip import compare_budgets
from repro.obs import get_metrics


def _square(payload):
    return payload * payload


class TestSweepScheduler:
    def test_serial_and_scheduled_agree(self):
        cells = list(range(12))
        serial = SweepScheduler(jobs=None).map(_square, cells)
        fanned = SweepScheduler(jobs=3).map(_square, cells)
        assert serial == [c * c for c in cells]
        assert fanned == serial

    def test_order_is_submission_order(self):
        cells = [5, 1, 4, 2]
        assert sweep_map(_square, cells, jobs=2) == [25, 1, 16, 4]

    def test_jobs_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        scheduler = SweepScheduler()
        assert scheduler.jobs == 1

    def test_cell_counter_increments(self):
        before = get_metrics().counter("exec.sweep_cells").value
        SweepScheduler(jobs=None).map(_square, [1, 2, 3])
        assert get_metrics().counter("exec.sweep_cells").value == before + 3


class TestCompareBudgetsIdentity:
    """compare_budgets statistics must not depend on the worker count."""

    @pytest.mark.slow
    def test_scheduled_matches_serial(self):
        problems = [get_problem("c2_gray"), get_problem("c2_absdiff")]
        serial = compare_budgets("chatgpt-3.5", problems, budget=2,
                                 seeds=(0, 1), jobs=None)
        fanned = compare_budgets("chatgpt-3.5", problems, budget=2,
                                 seeds=(0, 1), jobs=2)
        assert fanned == serial

    @pytest.mark.slow
    def test_scheduled_matches_serial_under_service(self, monkeypatch):
        from repro.service import reset_default_broker
        problems = [get_problem("c2_gray")]
        monkeypatch.setenv("REPRO_SERVICE", "0")
        direct = compare_budgets("chatgpt-3.5", problems, budget=2,
                                 seeds=(0,), jobs=None)
        monkeypatch.setenv("REPRO_SERVICE", "1")
        reset_default_broker()
        try:
            brokered = compare_budgets("chatgpt-3.5", problems, budget=2,
                                       seeds=(0,), jobs=2)
        finally:
            reset_default_broker()
        assert brokered == direct
