"""Behavioural tests for the event-driven simulator."""

import pytest

from repro.hdl import (SimulationError, Simulator, elaborate, parse,
                       run_testbench)


def simulate(src, top="tb", max_time=100_000):
    design = elaborate(parse(src), top)
    sim = Simulator(design)
    sim.run(max_time=max_time)
    return sim


class TestCombinational:
    def test_continuous_assign_chain(self):
        sim = simulate("""
module tb;
  reg [3:0] a;
  wire [3:0] b, c;
  assign b = a + 1;
  assign c = b * 2;
  initial begin
    a = 3;
    #1 $display("c=%0d", c);
    $finish;
  end
endmodule""")
        assert "c=8" in sim.output[0]

    def test_always_star_recomputes(self):
        sim = simulate("""
module tb;
  reg [3:0] a; reg [3:0] y;
  always @(*) y = a ^ 4'hF;
  initial begin
    a = 4'h3; #1 $display("%h", y);
    a = 4'hA; #1 $display("%h", y);
    $finish;
  end
endmodule""")
        assert sim.output == ["c", "5"]

    def test_wire_initializer_is_continuous(self):
        sim = simulate("""
module tb;
  reg [7:0] a;
  wire [7:0] doubled = a + a;
  initial begin
    a = 21; #1 $display("%0d", doubled);
    a = 3;  #1 $display("%0d", doubled);
    $finish;
  end
endmodule""")
        assert sim.output == ["42", "6"]

    def test_case_statement(self):
        sim = simulate("""
module tb;
  reg [1:0] s; reg [3:0] y;
  always @(*) begin
    case (s)
      2'd0: y = 1;
      2'd1: y = 2;
      default: y = 15;
    endcase
  end
  initial begin
    s = 0; #1 $display("%0d", y);
    s = 1; #1 $display("%0d", y);
    s = 3; #1 $display("%0d", y);
    $finish;
  end
endmodule""")
        assert sim.output == ["1", "2", "15"]

    def test_casez_wildcard(self):
        sim = simulate("""
module tb;
  reg [3:0] r; reg [1:0] g;
  always @(*) begin
    casez (r)
      4'b1zzz: g = 3;
      4'b01zz: g = 2;
      default: g = 0;
    endcase
  end
  initial begin
    r = 4'b1010; #1 $display("%0d", g);
    r = 4'b0110; #1 $display("%0d", g);
    r = 4'b0010; #1 $display("%0d", g);
    $finish;
  end
endmodule""")
        assert sim.output == ["3", "2", "0"]

    def test_dynamic_bit_select(self):
        sim = simulate("""
module tb;
  reg [7:0] v; reg [2:0] i; wire b;
  assign b = v[i];
  initial begin
    v = 8'b10010110;
    i = 1; #1 $display("%b", b);
    i = 3; #1 $display("%b", b);
    $finish;
  end
endmodule""")
        assert sim.output == ["1", "0"]


class TestSequential:
    def test_nonblocking_swap(self):
        sim = simulate("""
module tb;
  reg clk; reg [3:0] a, b;
  always @(posedge clk) begin
    a <= b;
    b <= a;
  end
  initial begin
    clk = 0; a = 1; b = 2;
    #1 clk = 1;
    #1 $display("%0d %0d", a, b);
    $finish;
  end
endmodule""")
        assert sim.output == ["2 1"]

    def test_blocking_in_sequence(self):
        sim = simulate("""
module tb;
  reg clk; reg [3:0] a, b;
  always @(posedge clk) begin
    a = 4'd7;
    b = a;
  end
  initial begin
    clk = 0; a = 0; b = 0;
    #1 clk = 1;
    #1 $display("%0d", b);
    $finish;
  end
endmodule""")
        assert sim.output == ["7"]

    def test_async_reset(self):
        sim = simulate("""
module tb;
  reg clk, rst; reg [3:0] q;
  always @(posedge clk or posedge rst) begin
    if (rst) q <= 0;
    else q <= q + 1;
  end
  initial clk = 0;
  always #5 clk = ~clk;
  initial begin
    rst = 0;
    #12 rst = 1;
    #1 $display("q=%0d", q);
    $finish;
  end
endmodule""")
        assert "q=0" in sim.output[-1]

    def test_clock_generator_and_counts(self):
        sim = simulate("""
module tb;
  reg clk; reg [7:0] n;
  initial begin clk = 0; n = 0; end
  always #5 clk = ~clk;
  always @(posedge clk) n <= n + 1;
  initial begin
    #52 $display("n=%0d", n);
    $finish;
  end
endmodule""")
        assert sim.output == ["n=5"]

    def test_negedge_trigger(self):
        # Note: clk starts at X, and X->1 is not a negedge; 1->0 is.
        sim = simulate("""
module tb;
  reg clk; reg seen;
  always @(negedge clk) seen <= 1;
  initial begin
    seen = 0; clk = 1;
    #1 $display("%b", seen);
    #1 clk = 0;
    #1 $display("%b", seen);
    $finish;
  end
endmodule""")
        assert sim.output == ["0", "1"]


class TestTimingAndTasks:
    def test_time_function(self):
        sim = simulate("""
module tb;
  initial begin
    #25 $display("t=%0d", $time);
    $finish;
  end
endmodule""")
        assert sim.output == ["t=25"]

    def test_finish_stops_other_processes(self):
        sim = simulate("""
module tb;
  reg clk;
  initial clk = 0;
  always #5 clk = ~clk;
  initial #20 $finish;
endmodule""")
        assert sim.finished and sim.time == 20

    def test_error_task_counts(self):
        sim = simulate("""
module tb;
  initial begin
    $error("boom");
    $finish;
  end
endmodule""")
        assert sim.error_count == 1
        assert sim.output[0].startswith("ERROR:")

    def test_repeat_statement(self):
        sim = simulate("""
module tb;
  reg [3:0] n;
  initial begin
    n = 0;
    repeat (5) n = n + 1;
    $display("%0d", n);
    $finish;
  end
endmodule""")
        assert sim.output == ["5"]

    def test_while_statement(self):
        sim = simulate("""
module tb;
  integer i;
  initial begin
    i = 0;
    while (i < 3) i = i + 1;
    $display("%0d", i);
    $finish;
  end
endmodule""")
        assert sim.output == ["3"]

    def test_random_is_deterministic_per_seed(self):
        src = """
module tb;
  initial begin
    $display("%0d", $random);
    $finish;
  end
endmodule"""
        a = simulate(src).output
        design = elaborate(parse(src), "tb")
        sim2 = Simulator(design, seed=1)
        sim2.run()
        assert a == sim2.output

    def test_runaway_zero_delay_loop_detected(self):
        with pytest.raises(SimulationError):
            simulate("""
module tb;
  reg a;
  initial begin
    a = 0;
    while (1) a = ~a;
  end
endmodule""")

    def test_combinational_loop_detected(self):
        with pytest.raises(SimulationError):
            simulate("""
module tb;
  wire a, b;
  assign a = ~b;
  assign b = a;
  initial #1 $finish;
endmodule""")


class TestHierarchy:
    def test_parameterized_instance(self):
        sim = simulate("""
module add #(parameter W = 4)(input [W-1:0] a, output [W-1:0] y);
  assign y = a + 1;
endmodule
module tb;
  reg [7:0] a; wire [7:0] y;
  add #(.W(8)) u(.a(a), .y(y));
  initial begin
    a = 8'hFE; #1 $display("%h", y);
    $finish;
  end
endmodule""")
        assert sim.output == ["ff"]

    def test_two_level_hierarchy(self):
        sim = simulate("""
module inv(input a, output y);
  assign y = ~a;
endmodule
module buf2(input a, output y);
  wire m;
  inv i0(.a(a), .y(m));
  inv i1(.a(m), .y(y));
endmodule
module tb;
  reg a; wire y;
  buf2 u(.a(a), .y(y));
  initial begin
    a = 1; #1 $display("%b", y);
    $finish;
  end
endmodule""")
        assert sim.output == ["1"]

    def test_output_to_slice_connection(self):
        sim = simulate("""
module pass(input [3:0] a, output [3:0] y);
  assign y = a;
endmodule
module tb;
  reg [3:0] a; wire [7:0] y;
  pass u0(.a(a), .y(y[3:0]));
  pass u1(.a(a), .y(y[7:4]));
  initial begin
    a = 4'h9; #1 $display("%h", y);
    $finish;
  end
endmodule""")
        assert sim.output == ["99"]

    def test_function_call_in_sim(self):
        sim = simulate("""
module tb;
  reg [3:0] a; wire [3:0] y;
  function [3:0] inc;
    input [3:0] v;
    begin
      inc = v + 1;
    end
  endfunction
  assign y = inc(a);
  initial begin
    a = 6; #1 $display("%0d", y);
    $finish;
  end
endmodule""")
        assert sim.output == ["7"]

    def test_recursive_instantiation_rejected(self):
        from repro.hdl import ElaborationError
        with pytest.raises(ElaborationError):
            elaborate(parse("""
module a; a u(); endmodule"""), "a")


class TestTestbenchHarness:
    def test_score_counts_pass_fail(self):
        result = run_testbench("""
module tb;
  initial begin
    $display("PASS: one");
    $display("FAIL: two");
    $display("PASS: three");
    $finish;
  end
endmodule""", "tb")
        assert result.pass_count == 2 and result.fail_count == 1
        assert abs(result.score - 2 / 3) < 1e-9
        assert not result.passed

    def test_compile_error_reported(self):
        result = run_testbench("module tb; garbage", "tb")
        assert not result.compiled
        assert "COMPILE ERROR" in result.feedback()

    def test_no_checks_means_zero_score(self):
        result = run_testbench(
            "module tb; initial $finish; endmodule", "tb")
        assert result.score == 0.0 and not result.passed
