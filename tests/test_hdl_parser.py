"""Tests for the mini-Verilog parser."""

import pytest

from repro.hdl import ast as A
from repro.hdl.errors import ParseError
from repro.hdl.parser import parse, parse_module


class TestModuleHeaders:
    def test_ansi_ports(self):
        m = parse_module("module m(input a, output reg [3:0] q); endmodule")
        assert m.ports[0].direction == "input"
        assert m.ports[1].is_reg and m.ports[1].rng is not None

    def test_ansi_port_group_continuation(self):
        m = parse_module("module m(input [7:0] a, b, output y); endmodule")
        assert m.ports[0].rng is not None
        assert m.ports[1].direction == "input"
        assert m.ports[1].rng is not None
        assert m.ports[2].direction == "output"

    def test_non_ansi_ports(self):
        m = parse_module("""
module m(a, q);
  input a;
  output [3:0] q;
endmodule""")
        assert m.ports[0].direction == "input"
        assert m.ports[1].direction == "output"

    def test_parameters_in_header(self):
        m = parse_module("module m #(parameter W = 8, D = 2)(input a); endmodule")
        assert [p.name for p in m.parameters] == ["W", "D"]

    def test_parameters_in_body(self):
        m = parse_module("module m(input a); parameter W = 4; localparam L = W*2; endmodule")
        assert m.parameters[1].local

    def test_portless_module(self):
        m = parse_module("module tb; endmodule")
        assert m.ports == ()

    def test_multiple_modules(self):
        sf = parse("module a; endmodule module b; endmodule")
        assert set(sf.modules) == {"a", "b"}

    def test_parse_module_requires_unique(self):
        with pytest.raises(ParseError):
            parse_module("module a; endmodule module b; endmodule")

    def test_parse_module_by_name(self):
        m = parse_module("module a; endmodule module b; endmodule", "b")
        assert m.name == "b"

    def test_missing_endmodule(self):
        with pytest.raises(ParseError):
            parse("module m(input a);")


class TestDeclarationsAndAssigns:
    def test_wire_with_range_list(self):
        m = parse_module("module m; wire [7:0] a, b; endmodule")
        assert len(m.nets) == 2 and m.nets[1].rng is not None

    def test_reg_with_initializer(self):
        m = parse_module("module m; reg [3:0] q = 5; endmodule")
        assert isinstance(m.nets[0].init, A.Number)

    def test_integer_declaration(self):
        m = parse_module("module m; integer i; endmodule")
        assert m.nets[0].kind == "integer"

    def test_memory_rejected(self):
        with pytest.raises(ParseError):
            parse("module m; reg [7:0] mem [0:3]; endmodule")

    def test_continuous_assign(self):
        m = parse_module("module m(input a, output y); assign y = ~a; endmodule")
        assert isinstance(m.assigns[0].expr, A.Unary)

    def test_assign_to_part_select(self):
        m = parse_module("module m(output [7:0] y); wire [3:0] a; "
                         "assign y[7:4] = a; endmodule")
        assert m.assigns[0].target.msb is not None

    def test_generate_rejected(self):
        with pytest.raises(ParseError):
            parse("module m; generate endgenerate endmodule")


class TestAlwaysAndStatements:
    def test_always_star(self):
        m = parse_module("module m(input a, output reg y); "
                         "always @(*) y = a; endmodule")
        assert m.always_blocks[0].is_star

    def test_always_at_star_nospace(self):
        m = parse_module("module m(input a, output reg y); "
                         "always @* y = a; endmodule")
        assert m.always_blocks[0].is_star

    def test_always_posedge_with_or(self):
        m = parse_module("module m(input clk, input rst, output reg q); "
                         "always @(posedge clk or posedge rst) q <= rst; endmodule")
        assert m.always_blocks[0].edges == (("posedge", "clk"),
                                            ("posedge", "rst"))

    def test_case_with_default(self):
        m = parse_module("""
module m(input [1:0] s, output reg y);
  always @(*) begin
    case (s)
      2'd0, 2'd1: y = 0;
      default: y = 1;
    endcase
  end
endmodule""")
        case = m.always_blocks[0].body.stmts[0]
        assert isinstance(case, A.Case)
        assert case.items[0].labels is not None
        assert len(case.items[0].labels) == 2
        assert case.items[1].labels is None

    def test_for_loop(self):
        m = parse_module("""
module tb;
  integer i; reg [7:0] a;
  initial begin
    for (i = 0; i < 4; i = i + 1) a = a + 1;
  end
endmodule""")
        body = m.initial_blocks[0].body.stmts[0]
        assert isinstance(body, A.For)

    def test_delay_statement(self):
        m = parse_module("module tb; reg a; initial begin #10 a = 1; end endmodule")
        stmt = m.initial_blocks[0].body.stmts[0]
        assert isinstance(stmt, A.Delay) and stmt.then is not None

    def test_event_wait(self):
        m = parse_module("module tb; reg clk; initial @(posedge clk); endmodule")
        assert isinstance(m.initial_blocks[0].body, A.EventWait)

    def test_systask_with_args(self):
        m = parse_module('module tb; initial $display("x=%d", 3); endmodule')
        stmt = m.initial_blocks[0].body
        assert isinstance(stmt, A.SysTask) and len(stmt.args) == 2

    def test_nonblocking_vs_blocking(self):
        m = parse_module("""
module m(input clk, output reg a, output reg b);
  always @(posedge clk) begin
    a <= 1;
    b = 0;
  end
endmodule""")
        stmts = m.always_blocks[0].body.stmts
        assert not stmts[0].blocking and stmts[1].blocking

    def test_declaration_inside_block_rejected(self):
        with pytest.raises(ParseError):
            parse("module tb; initial begin integer i; end endmodule")


class TestExpressions:
    def _expr(self, text):
        m = parse_module(f"module m(output [31:0] y); assign y = {text}; endmodule")
        return m.assigns[0].expr

    def test_precedence_mul_over_add(self):
        e = self._expr("1 + 2 * 3")
        assert isinstance(e, A.Binary) and e.op == "+"
        assert isinstance(e.right, A.Binary) and e.right.op == "*"

    def test_precedence_compare_over_logical(self):
        e = self._expr("a < b && c")
        assert e.op == "&&"

    def test_ternary_nesting(self):
        e = self._expr("a ? b : c ? d : e")
        assert isinstance(e, A.Ternary)
        assert isinstance(e.if_false, A.Ternary)

    def test_concat(self):
        e = self._expr("{a, b, 2'b01}")
        assert isinstance(e, A.Concat) and len(e.parts) == 3

    def test_replication(self):
        e = self._expr("{4{a}}")
        assert isinstance(e, A.Replicate)

    def test_bit_select_and_slice(self):
        assert isinstance(self._expr("a[3]"), A.Index)
        assert isinstance(self._expr("a[7:4]"), A.Slice)

    def test_unary_reduction(self):
        e = self._expr("&a")
        assert isinstance(e, A.Unary) and e.op == "&"

    def test_arithmetic_shift_normalized(self):
        e = self._expr("a >>> 2")
        assert e.op == ">>"

    def test_case_equality_normalized(self):
        e = self._expr("a === b")
        assert e.op == "=="

    def test_function_call_expr(self):
        e = self._expr("f(a, b)")
        assert isinstance(e, A.FunctionCall) and len(e.args) == 2


class TestInstances:
    def test_named_connections(self):
        m = parse_module("""
module top(input a, output y);
  sub u0(.x(a), .y(y));
endmodule""")
        inst = m.instances[0]
        assert inst.module == "sub"
        assert inst.connections[0][0] == "x"

    def test_positional_connections(self):
        m = parse_module("module top(input a, output y); sub u0(a, y); endmodule")
        assert m.instances[0].connections[0][0] is None

    def test_parameter_overrides(self):
        m = parse_module("module top; sub #(.W(16)) u0(); endmodule")
        assert m.instances[0].param_overrides == (("W", A.Number(32, 16)),)

    def test_unconnected_port(self):
        m = parse_module("module top(input a); sub u0(.x(a), .y()); endmodule")
        assert m.instances[0].connections[1][1] is None


class TestFunctions:
    def test_function_with_body_args(self):
        m = parse_module("""
module m(input [3:0] a, output [3:0] y);
  function [3:0] double;
    input [3:0] v;
    begin
      double = v + v;
    end
  endfunction
  assign y = double(a);
endmodule""")
        assert m.functions[0].name == "double"
        assert len(m.functions[0].args) == 1
