"""Artifact-store suite: backends, journals, and resume identity.

The contract under test has three layers:

* **backends** — the :class:`repro.store.CacheBackend` surface: memory
  LRUs, the on-disk content-addressed store (atomic writes, corruption
  tolerated as misses), and the tiered composition with promotion;
* **cross-process reuse** — a subprocess warm-starts from artifacts its
  parent (or an earlier subprocess) persisted;
* **resume identity** — an interrupted sweep or fuzz campaign restarted
  with ``resume`` produces byte-identical results to an uninterrupted
  run, and corrupt checkpoints silently fall back to recomputation.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import threading

import pytest

import repro
from repro import obs
from repro.exec import sweep_map
from repro.fuzz.runner import campaign_fingerprint, run_campaign
from repro.store import (MISS, CampaignJournal, DiskStore, MemoryBackend,
                         TieredBackend, campaign_scope, content_key,
                         current_journal, get_default_store,
                         reset_default_store)

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


@pytest.fixture(autouse=True)
def _fresh_store_state():
    reset_default_store()
    yield
    reset_default_store()


def _subprocess_env(store_dir: str | None = None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    if store_dir is not None:
        env["REPRO_STORE"] = "1"
        env["REPRO_STORE_DIR"] = store_dir
    return env


class TestContentKey:
    def test_stable_across_equal_keys(self):
        key = ("tb", "abc123", None, 10_000, 7, "auto")
        assert content_key(key) == content_key(
            ("tb", "abc123", None, 10_000, 7, "auto"))

    def test_distinct_keys_distinct_digests(self):
        assert content_key(("a", 1)) != content_key(("a", 2))

    def test_string_keys_hash_raw_text(self):
        # A plain string is digested as-is (no repr quoting), so callers
        # can pre-hash and the digest is reproducible from the text.
        import hashlib
        assert content_key("hello") == \
            hashlib.sha256(b"hello").hexdigest()

    def test_digest_shape(self):
        digest = content_key(("x",))
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")


class TestMemoryBackend:
    def test_roundtrip_and_stats(self):
        backend = MemoryBackend()
        assert backend.get("r", "k") is None
        backend.put("r", "k", b"blob")
        assert backend.get("r", "k") == b"blob"
        stats = backend.stats()["r"]
        assert (stats.hits, stats.misses) == (1, 1)

    def test_regions_are_independent(self):
        backend = MemoryBackend()
        backend.put("a", "k", b"1")
        backend.put("b", "k", b"2")
        assert backend.get("a", "k") == b"1"
        assert backend.get("b", "k") == b"2"

    def test_eviction_is_bounded_and_counted(self):
        backend = MemoryBackend(capacities={"r": 2})
        for i in range(5):
            backend.put("r", f"k{i}", b"x")
        assert backend.sizes()["r"] == 2
        assert backend.stats()["r"].evictions == 3


class TestDiskStore:
    def test_roundtrip(self, tmp_path):
        store = DiskStore(str(tmp_path / "store"))
        assert store.get("parse", content_key("k")) is None
        store.put("parse", content_key("k"), b"payload")
        assert store.get("parse", content_key("k")) == b"payload"
        stats = store.stats()["parse"]
        assert (stats.hits, stats.misses, stats.corrupt) == (1, 1, 0)

    def test_structured_keys_land_on_digest_paths(self, tmp_path):
        store = DiskStore(str(tmp_path))
        store.put("r", content_key(("tb", "hash", 5)), b"v")
        (digest,) = store.keys("r")
        assert len(digest) == 64
        # Two-char fan-out directory matches the digest prefix.
        path = os.path.join(str(tmp_path), "r", digest[:2],
                            digest + ".blob")
        assert os.path.exists(path)

    def test_truncated_blob_is_a_counted_miss(self, tmp_path):
        store = DiskStore(str(tmp_path))
        key = content_key("artifact")
        store.put("r", key, b"x" * 100)
        path = os.path.join(str(tmp_path), "r", key[:2], key + ".blob")
        with open(path, "r+b") as fh:
            fh.truncate(10)  # torn write: header survives, payload cut
        assert store.get("r", key) is None
        assert store.stats()["r"].corrupt == 1

    def test_garbage_blob_is_a_counted_miss(self, tmp_path):
        store = DiskStore(str(tmp_path))
        key = content_key("artifact")
        store.put("r", key, b"good")
        path = os.path.join(str(tmp_path), "r", key[:2], key + ".blob")
        with open(path, "wb") as fh:
            fh.write(b"vandalism, not a framed blob")
        assert store.get("r", key) is None
        assert store.stats()["r"].corrupt == 1
        # The slot heals on the next write.
        store.put("r", key, b"good")
        assert store.get("r", key) == b"good"

    def test_corrupt_miss_increments_obs_counter(self, tmp_path):
        sink = obs.InMemorySink()
        obs.install_tracer(obs.Tracer(sink, enabled=True))
        obs.reset_metrics()
        try:
            store = DiskStore(str(tmp_path))
            key = content_key("artifact")
            store.put("r", key, b"x" * 50)
            path = os.path.join(str(tmp_path), "r", key[:2],
                                key + ".blob")
            with open(path, "wb") as fh:
                fh.write(b"junk")
            assert store.get("r", key) is None
            metrics = obs.get_metrics()
            assert metrics.counter("store.corrupt").value == 1
            assert metrics.counter("store.misses").value == 1
            assert metrics.counter("store.writes").value == 1
        finally:
            obs.reset_tracer()
            obs.reset_metrics()

    def test_failed_write_degrades_to_passthrough(self, tmp_path,
                                                  monkeypatch):
        """A full (or read-only) disk silently disables persistence; it
        never takes the run down."""
        import repro.store.backend as backend_mod
        store = DiskStore(str(tmp_path))

        def disk_full(*args, **kwargs):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(backend_mod.tempfile, "mkstemp", disk_full)
        store.put("r", content_key("k"), b"v")  # must not raise
        assert store.get("r", content_key("k")) is None

    def test_concurrent_writers_never_expose_torn_blobs(self, tmp_path):
        """Writers race on one key; readers may see either payload (or
        nothing, before the first publish) but never a torn mix."""
        store = DiskStore(str(tmp_path))
        key = content_key("contended")
        payloads = [bytes([i]) * 50_000 for i in range(4)]
        stop = threading.Event()
        bad: list[bytes] = []

        def writer(payload: bytes) -> None:
            while not stop.is_set():
                store.put("r", key, payload)

        def reader() -> None:
            while not stop.is_set():
                blob = store.get("r", key)
                if blob is not None and blob not in payloads:
                    bad.append(blob)

        threads = [threading.Thread(target=writer, args=(p,))
                   for p in payloads]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        threading.Event().wait(0.4)
        stop.set()
        for t in threads:
            t.join()
        assert not bad
        assert store.stats()["r"].corrupt == 0


class TestTieredBackend:
    def test_disk_hits_promote_to_memory(self, tmp_path):
        disk = DiskStore(str(tmp_path))
        memory = MemoryBackend()
        tiered = TieredBackend(memory, disk)
        key = content_key("k")
        disk.put("r", key, b"artifact")  # as if another process wrote it
        assert tiered.get("r", key) == b"artifact"   # miss -> disk hit
        assert tiered.get("r", key) == b"artifact"   # memory hit
        assert disk.stats()["r"].hits == 1
        assert memory.stats()["r"].hits == 1

    def test_put_writes_both_tiers(self, tmp_path):
        disk = DiskStore(str(tmp_path))
        tiered = TieredBackend(MemoryBackend(), disk)
        tiered.put("r", content_key("k"), b"v")
        assert disk.get("r", content_key("k")) == b"v"

    def test_callable_disk_resolves_live(self, tmp_path):
        disk = DiskStore(str(tmp_path))
        enabled = {"on": False}
        tiered = TieredBackend(
            MemoryBackend(), lambda: disk if enabled["on"] else None)
        tiered.put("r", content_key("k"), b"v")
        assert disk.get("r", content_key("k")) is None  # disk was off
        enabled["on"] = True
        tiered.put("r", content_key("k2"), b"v2")
        assert disk.get("r", content_key("k2")) == b"v2"


class TestDefaultStore:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        reset_default_store()
        assert get_default_store() is None

    def test_env_knobs_resolve_live(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "1")
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        store = get_default_store()
        assert store is not None
        assert store.root == str(tmp_path)
        assert get_default_store() is store  # cached per (enabled, dir)
        monkeypatch.setenv("REPRO_STORE", "0")
        assert get_default_store() is None


class TestCrossProcessReuse:
    def test_subprocess_reads_parent_artifacts(self, tmp_path):
        store = DiskStore(str(tmp_path))
        store.put("r", content_key("shared"), b"from-parent")
        script = (
            "import sys\n"
            "from repro.store import DiskStore, content_key\n"
            "store = DiskStore(sys.argv[1])\n"
            "blob = store.get('r', content_key('shared'))\n"
            "assert blob == b'from-parent', blob\n"
            "print('ok')\n")
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            env=_subprocess_env(), capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"

    def test_compile_results_warm_start_across_processes(self, tmp_path):
        """A second process serves ``run_testbench`` from the first
        process's persisted result blob — and returns identical bytes."""
        script = (
            "import pickle\n"
            "from repro.bench.problems import all_problems\n"
            "from repro.hdl import run_testbench\n"
            "from repro.store import get_default_store\n"
            "p = all_problems()[3]\n"
            "r = run_testbench(p.reference, p.tb_name,\n"
            "                  tb_source=p.testbench)\n"
            "stats = get_default_store().stats()\n"
            "hits = stats.get('result').hits if 'result' in stats else 0\n"
            "print(hits, pickle.dumps(r).hex())\n")
        env = _subprocess_env(str(tmp_path))
        cold = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True)
        warm = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True)
        assert cold.returncode == 0, cold.stderr
        assert warm.returncode == 0, warm.stderr
        cold_hits, cold_blob = cold.stdout.split()
        warm_hits, warm_blob = warm.stdout.split()
        assert int(cold_hits) == 0
        assert int(warm_hits) >= 1
        assert warm_blob == cold_blob


class TestCampaignJournal:
    def test_record_then_resume_lookup(self, tmp_path):
        store = DiskStore(str(tmp_path))
        writer = CampaignJournal(store, ("camp", 1))
        writer.record("cell", 0, {"value": 42})
        assert writer.written == 1
        reader = CampaignJournal(store, ("camp", 1), resume=True)
        assert reader.lookup("cell", 0) == {"value": 42}
        assert reader.restored == 1

    def test_fresh_journal_never_reads(self, tmp_path):
        store = DiskStore(str(tmp_path))
        CampaignJournal(store, "c").record("cell", 0, "done")
        fresh = CampaignJournal(store, "c", resume=False)
        assert fresh.lookup("cell", 0) is MISS

    def test_campaigns_do_not_collide(self, tmp_path):
        store = DiskStore(str(tmp_path))
        CampaignJournal(store, ("camp", "a")).record("cell", 0, "a-result")
        other = CampaignJournal(store, ("camp", "b"), resume=True)
        assert other.lookup("cell", 0) is MISS

    def test_unpicklable_checkpoint_is_a_miss(self, tmp_path):
        store = DiskStore(str(tmp_path))
        journal = CampaignJournal(store, "c", resume=True)
        store.put(journal.region, journal.key("cell", 0), b"not a pickle")
        assert journal.lookup("cell", 0) is MISS

    def test_campaign_scope_installs_and_restores(self, tmp_path):
        journal = CampaignJournal(DiskStore(str(tmp_path)), "c")
        assert current_journal() is None
        with campaign_scope(journal):
            assert current_journal() is journal
            with campaign_scope(None):
                assert current_journal() is None
            assert current_journal() is journal
        assert current_journal() is None


def _cell_outcome(payload):
    return {"cell": payload, "score": payload * payload}


def _dumps_each(results):
    """Per-element pickles: element identity is the contract.  (Pickling
    the whole list would also compare the *memo sharing* between elements
    — an artifact of which objects happen to be interned together, not of
    the results.)"""
    return [pickle.dumps(r) for r in results]


class TestSweepResume:
    def test_resume_equals_fresh(self, tmp_path):
        cells = list(range(6))
        fresh = sweep_map(_cell_outcome, cells)

        store = DiskStore(str(tmp_path))
        fingerprint = ("sweep", "unit", 0)
        # Interrupted run: only the first three cells complete.
        with campaign_scope(CampaignJournal(store, fingerprint)):
            sweep_map(_cell_outcome, cells[:3])
        journal = CampaignJournal(store, fingerprint, resume=True)
        with campaign_scope(journal):
            resumed = sweep_map(_cell_outcome, cells)

        assert _dumps_each(resumed) == _dumps_each(fresh)
        assert journal.restored == 3
        assert journal.written == 3  # only the remainder was recomputed

    def test_corrupt_checkpoint_recomputes_cell(self, tmp_path):
        cells = list(range(4))
        fresh = sweep_map(_cell_outcome, cells)
        store = DiskStore(str(tmp_path))
        with campaign_scope(CampaignJournal(store, "corrupt-test")):
            sweep_map(_cell_outcome, cells)
        # Vandalize one checkpoint on disk.
        digest = store.keys("campaign")[0]
        path = os.path.join(store.root, "campaign", digest[:2],
                            digest + ".blob")
        with open(path, "wb") as fh:
            fh.write(b"zap")
        journal = CampaignJournal(store, "corrupt-test", resume=True)
        with campaign_scope(journal):
            resumed = sweep_map(_cell_outcome, cells)
        assert _dumps_each(resumed) == _dumps_each(fresh)
        assert journal.restored == 3
        assert journal.written == 1  # the vandalized cell was recomputed

    def test_parallel_resume_equals_fresh(self, tmp_path):
        cells = list(range(8))
        fresh = sweep_map(_cell_outcome, cells, jobs=3)
        store = DiskStore(str(tmp_path))
        fingerprint = ("sweep", "parallel", 0)
        with campaign_scope(CampaignJournal(store, fingerprint)):
            sweep_map(_cell_outcome, cells[:5], jobs=3)
        journal = CampaignJournal(store, fingerprint, resume=True)
        with campaign_scope(journal):
            resumed = sweep_map(_cell_outcome, cells, jobs=3)
        assert _dumps_each(resumed) == _dumps_each(fresh)
        assert journal.restored == 5


class TestFuzzResume:
    @pytest.mark.slow
    def test_hundred_case_resume_equals_fresh(self, tmp_path):
        """An interrupted 100-case campaign resumed from its journal is
        byte-identical to the uninterrupted run."""
        seed = 1
        fresh = run_campaign(100, seed, corpus_dir=None)

        store = DiskStore(str(tmp_path))
        fingerprint = campaign_fingerprint(seed, None, None, True)
        # Interrupted run: the first 40 cases complete and checkpoint.
        run_campaign(40, seed, corpus_dir=None,
                     journal=CampaignJournal(store, fingerprint))
        journal = CampaignJournal(store, fingerprint, resume=True)
        resumed = run_campaign(100, seed, corpus_dir=None, journal=journal)

        assert journal.restored == 40
        assert pickle.dumps(resumed) == pickle.dumps(fresh)

    def test_short_resume_equals_fresh_with_findings_machinery(
            self, tmp_path):
        seed = 2
        fresh = run_campaign(12, seed, corpus_dir=None)
        store = DiskStore(str(tmp_path))
        fingerprint = campaign_fingerprint(seed, None, None, True)
        run_campaign(5, seed, corpus_dir=None,
                     journal=CampaignJournal(store, fingerprint))
        journal = CampaignJournal(store, fingerprint, resume=True)
        resumed = run_campaign(12, seed, corpus_dir=None, journal=journal)
        assert journal.restored == 5
        assert pickle.dumps(resumed) == pickle.dumps(fresh)

    def test_budget_extension_reuses_journal(self, tmp_path):
        """The fingerprint excludes the budget, so a finished campaign
        seeds a longer one."""
        store = DiskStore(str(tmp_path))
        fingerprint = campaign_fingerprint(3, None, None, True)
        run_campaign(6, 3, corpus_dir=None,
                     journal=CampaignJournal(store, fingerprint))
        journal = CampaignJournal(store, fingerprint, resume=True)
        extended = run_campaign(10, 3, corpus_dir=None, journal=journal)
        assert journal.restored == 6
        assert extended.cases_run == 10
