"""Cross-package integration tests: the full stack wired together."""

from repro.bench import evaluate_candidate, get_problem
from repro.flows import run_autochip
from repro.hdl import parse_module
from repro.hls import c_rtl_cosim, cparse, repair_source
from repro.llm import SimulatedLLM
from repro.riscv import FpgaPowerMeter
from repro.synth import (check_against_simulation, estimate_ppa, optimize,
                         synthesize_module)


class TestGenerateVerifySynthesize:
    """Spec → LLM → simulator → synthesis → PPA, with equivalence checks at
    every hand-off."""

    def test_generated_design_synthesizes_equivalent(self):
        problem = get_problem("c2_gray")
        result = run_autochip(problem, model="gpt-4o", k=3, depth=3, seed=1)
        assert result.success
        module = parse_module(result.best_source, problem.module_name)
        netlist = synthesize_module(module)
        cec = check_against_simulation(netlist, result.best_source, module,
                                       vectors=30)
        assert cec.equivalent

    def test_optimization_preserves_generated_design(self):
        problem = get_problem("c3_alu")
        result = run_autochip(problem, model="gpt-4o", k=3, depth=3, seed=2)
        assert result.success
        module = parse_module(result.best_source, problem.module_name)
        netlist = synthesize_module(module)
        before = netlist.aig
        after = optimize(before).aig
        from repro.synth import check_aigs
        assert check_aigs(before, after).equivalent
        netlist.aig = after
        report = estimate_ppa(netlist)
        assert report.area_um2 > 0

    def test_tool_feedback_text_flows_back(self):
        problem = get_problem("c2_adder8")
        broken = problem.reference.replace("a + b + cin", "a + b")
        verdict = evaluate_candidate(problem, broken)
        assert not verdict.passed
        feedback = verdict.feedback()
        assert "FAIL" in feedback or "failed" in feedback


class TestRepairedKernelToRtl:
    """HLS repair output feeds RTL generation and the Verilog simulator."""

    def test_repaired_kernel_reaches_rtl(self):
        source = """
int scale_sum(int n) {
    int *data = malloc(8 * sizeof(int));
    for (int i = 0; i < 8; i++) { data[i] = i * n; }
    int acc = 0;
    for (int i = 0; i < 8; i++) { acc += data[i]; }
    free(data);
    return acc;
}
"""
        result = repair_source(source, "scale_sum", model="gpt-4", seed=1)
        assert result.success
        cosim = c_rtl_cosim(cparse(result.repaired_source), "scale_sum",
                            vectors=10)
        assert cosim.equivalent or cosim.skipped_reason == ""


class TestCSemanticsAgreement:
    """Three executors of mini-C must agree: the interpreter, the RISC-V
    core (via the compiler), and the generated RTL (via the HDL simulator)."""

    KERNEL = """
int kern(int a, int b) {
    int acc = 0;
    for (int i = 0; i < 6; i++) {
        int t = a * i + b;
        if (t % 3 == 0) { acc += t; }
        else { acc += 1; }
    }
    return acc;
}
"""

    def test_interpreter_vs_riscv_core(self):
        from repro.hls import Machine
        from repro.riscv import assemble, compile_program, run_program
        wrapped = self.KERNEL + "\nint main() { return kern(11, 5); }\n"
        interp = Machine(cparse(wrapped)).call("kern", 11, 5).value
        core = run_program(assemble(compile_program(wrapped))).return_value
        assert interp == core

    def test_interpreter_vs_generated_rtl(self):
        # % 3 is not a power of two, so RTL generation falls back — use a
        # synthesizable variant for the RTL leg.
        kernel = """
int kern(int a, int b) {
    int acc = 0;
    for (int i = 0; i < 6; i++) {
        int t = a * i + b;
        if ((t & 3) == 0) { acc += t; }
        else { acc += 1; }
    }
    return acc;
}
"""
        report = c_rtl_cosim(cparse(kernel), "kern", vectors=20)
        assert report.equivalent, report.summary()


class TestSltUsesRealPower:
    """The SLT loop's scores must come from actually-executed programs."""

    def test_meter_scores_reflect_execution(self):
        meter = FpgaPowerMeter(seed=4)
        idle = meter.measure_c(
            "int main() { int s = 0; for (int i = 0; i < 50; i++) "
            "{ s += 1; } return s; }")
        busy = meter.measure_c("""
int main() {
    int a = 0x1357; int b = 0x2468; int s1 = 1; int s2 = 2;
    for (int i = 0; i < 400; i++) {
        s1 = s1 + a * b; s2 = s2 ^ (s1 * 3); a = a + 7; b = b ^ s2;
    }
    return s1 + s2;
}""")
        assert idle.ok and busy.ok
        assert idle.stats is not None and busy.stats is not None
        assert busy.stats.unit_ops.get("mul", 0) \
            > idle.stats.unit_ops.get("mul", 0)


class TestTokenAccountingAcrossFlows:
    def test_autochip_tokens_scale_with_budget(self):
        problem = get_problem("c3_alu")
        small = run_autochip(problem, model="chatgpt-3.5", k=1, depth=1,
                             seed=4)
        big = run_autochip(problem, model="chatgpt-3.5", k=4, depth=1, seed=4)
        assert big.total_tokens > small.total_tokens

    def test_llm_usage_shared_across_flow(self):
        llm = SimulatedLLM("gpt-4", seed=0)
        from repro.flows import AutoChip, AutoChipConfig
        chip = AutoChip(llm, AutoChipConfig(k=2, depth=1))
        chip.run(get_problem("c1_mux2"))
        first = llm.usage.total_tokens
        chip.run(get_problem("c1_and4"))
        assert llm.usage.total_tokens > first
