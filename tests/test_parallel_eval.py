"""Parallel evaluation engine: deterministic ordering, jobs resolution,
timeouts, and serial/parallel equivalence of full suite evaluations."""

import pickle
import time

import pytest

from repro.bench import all_problems, evaluate_model
from repro.exec import (EvaluationTimeout, JOBS_ENV, ParallelEvaluator,
                        parallel_map, resolve_jobs)
from repro.hdl import CompileCache, get_default_cache, set_default_cache


def _square(x):
    return x * x


def _slow_identity(x):
    time.sleep(0.4)
    return x


def _hang_or_echo(x):
    if x == "hang":
        time.sleep(60)
    return x


@pytest.fixture(autouse=True)
def _fresh_default_cache():
    old = get_default_cache()
    set_default_cache(CompileCache())
    yield
    set_default_cache(old)


class TestJobsResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs() == 1

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs() == 3

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs(2) == 2

    def test_auto_uses_cpu_count(self):
        import os
        assert resolve_jobs("auto") == max(1, os.cpu_count() or 1)
        assert resolve_jobs(-1) == max(1, os.cpu_count() or 1)

    def test_garbage_env_degrades_to_serial(self, monkeypatch):
        from repro.exec.parallel import _warned_bad_jobs

        monkeypatch.setenv(JOBS_ENV, "lots")
        _warned_bad_jobs.discard(("REPRO_JOBS environment variable", "lots"))
        with pytest.warns(RuntimeWarning):
            assert resolve_jobs() == 1

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            ParallelEvaluator(2, mode="gpu")


class TestOrderingAndModes:
    ITEMS = list(range(17))

    def test_serial_ordering(self):
        assert ParallelEvaluator(1).map(_square, self.ITEMS) == \
            [x * x for x in self.ITEMS]

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_pool_preserves_submission_order(self, mode):
        out = ParallelEvaluator(4, mode=mode).map(_square, self.ITEMS)
        assert out == [x * x for x in self.ITEMS]

    def test_auto_falls_back_to_threads_for_closures(self):
        # A lambda cannot cross a process boundary; auto mode must degrade
        # to threads rather than crash.
        out = ParallelEvaluator(2, mode="auto").map(lambda x: x + 1, [1, 2, 3])
        assert out == [2, 3, 4]

    def test_process_mode_propagates_pickling_error(self):
        with pytest.raises((TypeError, AttributeError)):
            ParallelEvaluator(2, mode="process").map(lambda x: x, [1, 2])

    def test_single_item_runs_inline(self):
        assert ParallelEvaluator(8, mode="process").map(_square, [5]) == [25]

    def test_parallel_map_convenience(self):
        assert parallel_map(_square, [1, 2, 3], jobs=2, mode="thread") == \
            [1, 4, 9]


class TestTimeouts:
    def test_timeout_raises_without_handler(self):
        ev = ParallelEvaluator(2, mode="thread", timeout=0.05)
        with pytest.raises(EvaluationTimeout):
            ev.map(_slow_identity, [1, 2])

    def test_timeout_result_fills_slot(self):
        ev = ParallelEvaluator(2, mode="thread", timeout=0.05)
        out = ev.map(_slow_identity, [1, 2],
                     timeout_result=lambda item: ("timeout", item))
        assert out == [("timeout", 1), ("timeout", 2)]

    def test_fast_tasks_unaffected_by_timeout(self):
        ev = ParallelEvaluator(2, mode="thread", timeout=30.0)
        assert ev.map(_square, [3, 4]) == [9, 16]

    def test_hung_worker_does_not_wedge_sweep(self):
        # Regression: ``with executor:`` used to block on the hung worker
        # at shutdown, so one stuck task turned a 1.5s sweep into a 60s
        # one.  The pool must be abandoned (wait=False) and stuck process
        # workers forcibly reaped.
        import multiprocessing

        ev = ParallelEvaluator(2, mode="process", timeout=1.5)
        t0 = time.monotonic()
        out = ev.map(_hang_or_echo, ["hang", "a", "b", "c"],
                     timeout_result=lambda item: ("TO", item))
        elapsed = time.monotonic() - t0
        assert out == [("TO", "hang"), "a", "b", "c"]
        assert elapsed < 2 * 1.5, f"sweep wedged for {elapsed:.1f}s"
        # The hung fork worker must actually be dead, not leaked.
        deadline = time.monotonic() + 5.0
        while multiprocessing.active_children() \
                and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not multiprocessing.active_children()


class TestBadJobsWarning:
    def test_garbage_env_warns_once_naming_value(self, monkeypatch):
        import warnings as warnings_mod

        from repro.exec.parallel import _warned_bad_jobs

        monkeypatch.setenv(JOBS_ENV, "garbage-49")
        _warned_bad_jobs.discard(
            ("REPRO_JOBS environment variable", "garbage-49"))
        with pytest.warns(RuntimeWarning, match="garbage-49") as caught:
            assert resolve_jobs() == 1
        assert len(caught) == 1
        assert "REPRO_JOBS" in str(caught[0].message)
        # Deduplicated: the same bad value never warns twice.
        with warnings_mod.catch_warnings(record=True) as again:
            warnings_mod.simplefilter("always")
            assert resolve_jobs() == 1
        assert not again

    def test_garbage_argument_warns_with_source(self):
        from repro.exec.parallel import _warned_bad_jobs

        _warned_bad_jobs.discard(("jobs argument", "many"))
        with pytest.warns(RuntimeWarning, match="jobs argument"):
            assert resolve_jobs("many") == 1


def _suite_signature(suite):
    return [
        (p.problem_id,
         [(s.passed, s.score, s.generation.text,
           pickle.dumps(s.result)) for s in p.samples])
        for p in suite.problems
    ]


class TestSuiteEquivalence:
    PROBLEMS = all_problems()[:6]

    def test_parallel_evaluate_model_matches_serial(self):
        serial = evaluate_model("gpt-4", self.PROBLEMS, k=3,
                                temperature=1.1, seed=11, jobs=1)
        set_default_cache(CompileCache())
        threaded = evaluate_model("gpt-4", self.PROBLEMS, k=3,
                                  temperature=1.1, seed=11, jobs=4,
                                  mode="thread")
        set_default_cache(CompileCache())
        forked = evaluate_model("gpt-4", self.PROBLEMS, k=3,
                                temperature=1.1, seed=11, jobs=4,
                                mode="process")
        assert _suite_signature(serial) == _suite_signature(threaded)
        assert _suite_signature(serial) == _suite_signature(forked)

    def test_warm_cache_does_not_change_results(self):
        cold = evaluate_model("gpt-4o", self.PROBLEMS, k=2, seed=5, jobs=1)
        warm = evaluate_model("gpt-4o", self.PROBLEMS, k=2, seed=5, jobs=1)
        assert _suite_signature(cold) == _suite_signature(warm)
