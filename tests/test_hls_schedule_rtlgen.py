"""Tests for pragma parsing, the schedule model, RTL generation and cosim."""

import pytest

from repro.hls import (c_rtl_cosim, cparse, cpu_fpga_cosim, estimate_schedule,
                       find_loops, generate_rtl, parse_pragma, pipeline_ii,
                       set_loop_pragmas, unroll_factor, RtlGenError)
from repro.hls.cprinter import program_str


class TestPragmas:
    def test_parse_pipeline(self):
        p = parse_pragma("#pragma HLS pipeline II=2")
        assert p.kind == "pipeline" and p.int_option("ii", 1) == 2

    def test_parse_unroll(self):
        p = parse_pragma("#pragma HLS unroll factor=4")
        assert p.int_option("factor", 1) == 4

    def test_non_hls_pragma_ignored(self):
        assert parse_pragma("#pragma once") is None

    def test_pipeline_ii_helper(self):
        assert pipeline_ii(("#pragma HLS pipeline II=3",)) == 3
        assert pipeline_ii(("#pragma HLS unroll factor=2",)) is None

    def test_unroll_helper_default(self):
        assert unroll_factor(()) == 1

    def test_find_and_set_loop_pragmas(self):
        src = """
int f(int a[8]) {
    int s = 0;
    for (int i = 0; i < 8; i++) { s += a[i]; }
    return s;
}"""
        prog = cparse(src)
        loops = find_loops(prog.function("f"))
        assert len(loops) == 1
        site, _ = loops[0]
        updated = set_loop_pragmas(prog, site,
                                   ("#pragma HLS pipeline II=1",))
        new_loops = find_loops(updated.function("f"))
        assert new_loops[0][1].pragmas == ("#pragma HLS pipeline II=1",)
        # Round-trips through the printer.
        assert "pipeline" in program_str(updated)


MAC = """
int mac(int a[8], int b[8]) {
    int acc = 0;
    for (int i = 0; i < 8; i++) {
        acc += a[i] * b[i];
    }
    return acc;
}
"""


class TestSchedule:
    def test_baseline_latency(self):
        report = estimate_schedule(cparse(MAC), "mac")
        assert report.latency_cycles > 8      # at least a cycle per trip
        assert report.ops.mul == 8
        assert report.loop_details[0]["trips"] == 8

    def test_pipeline_reduces_latency(self):
        base = estimate_schedule(cparse(MAC), "mac")
        piped_src = MAC.replace("for (int i", "for (int i",).replace(
            "{\n        acc", "{\n    #pragma HLS pipeline II=1\n        acc")
        piped = estimate_schedule(cparse(piped_src), "mac")
        assert piped.latency_cycles < base.latency_cycles

    def test_carried_dependency_limits_ii(self):
        piped_src = MAC.replace(
            "{\n        acc", "{\n    #pragma HLS pipeline II=1\n        acc")
        report = estimate_schedule(cparse(piped_src), "mac")
        detail = report.loop_details[0]
        assert detail["carried_dependency"]
        assert detail["achieved_ii"] >= detail["requested_ii"]

    def test_unroll_raises_resources(self):
        unrolled = MAC.replace(
            "{\n        acc", "{\n    #pragma HLS unroll factor=4\n        acc")
        base = estimate_schedule(cparse(MAC), "mac")
        wide = estimate_schedule(cparse(unrolled), "mac")
        assert wide.area_score > base.area_score
        assert wide.latency_cycles <= base.latency_cycles

    def test_runtime_us(self):
        report = estimate_schedule(cparse(MAC), "mac", clock_ns=10.0)
        assert report.runtime_us == pytest.approx(
            report.latency_cycles / 100.0)


class TestRtlGen:
    def test_scalar_kernel(self):
        rtl = generate_rtl(cparse("int f(int a, int b) { return a * b + 3; }"),
                           "f")
        assert "module f(" in rtl.source
        assert rtl.scalar_inputs == ["a", "b"]

    def test_loop_unrolled_kernel_cosim(self):
        report = c_rtl_cosim(cparse(MAC), "mac", vectors=12)
        assert report.equivalent, report.summary()

    def test_if_merge_cosim(self):
        src = """
int f(int a, int b) {
    int m = a;
    if (b > a) { m = b; }
    return m * 2;
}"""
        report = c_rtl_cosim(cparse(src), "f", vectors=20)
        assert report.equivalent

    def test_ternary_and_minmax_cosim(self):
        src = "int f(int a, int b) { return min(a, b) + max(a, b); }"
        report = c_rtl_cosim(cparse(src), "f", vectors=20)
        assert report.equivalent

    def test_width_override_narrows_wire(self):
        rtl = generate_rtl(cparse("int f(int a) { int t = a + 1; return t; }"),
                           "f", width_overrides={"t": 8})
        assert "wire [7:0] t_" in rtl.source

    def test_width_override_causes_mismatch(self):
        src = "int f(int a) { int t = a + 200; return t; }"
        report = c_rtl_cosim(cparse(src), "f", vectors=24,
                             width_overrides={"t": 8})
        assert not report.equivalent and report.mismatches

    def test_while_rejected(self):
        with pytest.raises(RtlGenError):
            generate_rtl(cparse("int f(int a) { while (a > 0) { a--; } return a; }"),
                         "f")

    def test_early_return_one_branch_rejected(self):
        with pytest.raises(RtlGenError):
            generate_rtl(cparse(
                "int f(int a) { if (a > 0) { return 1; } return a + 2; }"), "f")

    def test_symmetric_early_return_ok(self):
        src = "int f(int a) { if (a > 4) { return 1; } else { return 0; } }"
        report = c_rtl_cosim(cparse(src), "f", vectors=16)
        assert report.equivalent

    def test_void_kernel_rejected(self):
        with pytest.raises(RtlGenError):
            generate_rtl(cparse("void f(int a[4]) { a[0] = 1; }"), "f")

    def test_oversized_array_rejected(self):
        with pytest.raises(RtlGenError):
            generate_rtl(cparse("int f(int a[100]) { return a[0]; }"), "f")


class TestCpuFpgaCosim:
    def test_width_discrepancy_found(self):
        prog = cparse("int f(int a) { int acc = a * a; return acc; }")
        inputs = [[300], [10], [500]]
        report = cpu_fpga_cosim(prog, "f", inputs,
                                width_overrides={"acc": 16})
        assert report.vectors_run == 3
        assert report.mismatches   # 300*300 overflows 16 bits

    def test_identical_when_wide_enough(self):
        prog = cparse("int f(int a) { int acc = a + 1; return acc; }")
        report = cpu_fpga_cosim(prog, "f", [[5], [10]],
                                width_overrides={"acc": 31})
        assert report.equivalent
