"""Tests for the mini-C lexer, parser, printer and interpreter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hls import CParseError, CRuntimeError, Machine, cparse, program_str
from repro.hls.clexer import CLexError, ctokenize, CTokKind


class TestLexer:
    def test_tokens_and_keywords(self):
        toks = ctokenize("int x = 42;")
        assert [t.text for t in toks[:-1]] == ["int", "x", "=", "42", ";"]

    def test_hex_literal(self):
        assert ctokenize("0xFF")[0].value == 255

    def test_char_literal(self):
        assert ctokenize("'a'")[0].value == ord("a")

    def test_comments_stripped(self):
        toks = ctokenize("a /* b */ c // d\n e")
        assert [t.text for t in toks[:-1]] == ["a", "c", "e"]

    def test_pragma_preserved(self):
        toks = ctokenize("#pragma HLS pipeline II=1\nint x;")
        assert toks[0].kind is CTokKind.PRAGMA
        assert "pipeline" in toks[0].text

    def test_include_skipped(self):
        toks = ctokenize("#include <stdio.h>\nint x;")
        assert toks[0].text == "int"

    def test_define_substitution(self):
        toks = ctokenize("#define N 16\nint a[N];")
        assert any(t.value == 16 for t in toks if t.kind is CTokKind.NUMBER)

    def test_float_rejected(self):
        with pytest.raises(CLexError):
            ctokenize("1.5")


class TestParser:
    def test_function_with_params(self):
        prog = cparse("int f(int a, int b) { return a + b; }")
        func = prog.function("f")
        assert len(func.params) == 2

    def test_array_param(self):
        prog = cparse("int f(int a[8]) { return a[0]; }")
        assert prog.function("f").params[0].ctype.array_size == 8

    def test_pointer_param(self):
        prog = cparse("int f(int *p) { return p[0]; }")
        assert prog.function("f").params[0].ctype.is_pointer

    def test_struct_rejected(self):
        with pytest.raises(CParseError):
            cparse("struct point { int x; };")

    def test_switch_rejected(self):
        with pytest.raises(CParseError):
            cparse("int f(int a) { switch (a) { } }")

    def test_float_type_rejected(self):
        with pytest.raises(CParseError):
            cparse("float f(int a) { return a; }")

    def test_prototype_skipped(self):
        prog = cparse("int g(int a);\nint g(int a) { return a; }")
        assert "g" in prog.functions

    def test_loop_pragma_attachment(self):
        prog = cparse("""
int f(int n) {
    int s = 0;
    for (int i = 0; i < 8; i++) {
    #pragma HLS unroll factor=2
        s += i * n;
    }
    return s;
}""")
        from repro.hls.cast import CFor
        loop = [s for s in prog.function("f").body.stmts
                if isinstance(s, CFor)][0]
        assert loop.pragmas and "unroll" in loop.pragmas[0]

    def test_roundtrip_through_printer(self):
        src = """
int f(int a, int b) {
    int acc = 0;
    for (int i = 0; i < 4; i++) {
        if (a > b) { acc += i; }
        else { acc -= 1; }
    }
    while (acc > 100) { acc = acc - 7; }
    return acc * 2;
}"""
        printed = program_str(cparse(src))
        reparsed = cparse(printed)
        assert "f" in reparsed.functions
        # Second round trip is a fixed point.
        assert program_str(reparsed) == printed


class TestInterpreter:
    def run(self, src, fn, *args, **kw):
        return Machine(cparse(src), **kw).call(fn, *args)

    def test_arithmetic_and_return(self):
        assert self.run("int f(int a) { return a * 3 + 1; }", "f", 5).value == 16

    def test_signed_division_truncates(self):
        assert self.run("int f() { return -7 / 2; }", "f").value == -3
        assert self.run("int f() { return -7 % 2; }", "f").value == -1

    def test_division_by_zero(self):
        with pytest.raises(CRuntimeError) as exc:
            self.run("int f(int a) { return 1 / a; }", "f", 0)
        assert exc.value.kind == "divzero"

    def test_overflow_wraps_32bit(self):
        assert self.run("int f() { return 2147483647 + 1; }", "f").value \
            == -2147483648

    def test_for_loop_sum(self):
        src = "int f(int n) { int s = 0; for (int i = 1; i <= n; i++) s += i; return s; }"
        assert self.run(src, "f", 10).value == 55

    def test_while_and_break(self):
        src = """
int f() {
    int i = 0;
    while (1) {
        i++;
        if (i == 7) { break; }
    }
    return i;
}"""
        assert self.run(src, "f").value == 7

    def test_continue(self):
        src = """
int f() {
    int s = 0;
    for (int i = 0; i < 10; i++) {
        if (i % 2 == 0) { continue; }
        s += i;
    }
    return s;
}"""
        assert self.run(src, "f").value == 25

    def test_arrays_and_indexing(self):
        src = """
int f() {
    int a[4];
    for (int i = 0; i < 4; i++) a[i] = i * i;
    return a[3] - a[1];
}"""
        assert self.run(src, "f").value == 8

    def test_array_bounds_checked(self):
        with pytest.raises(CRuntimeError) as exc:
            self.run("int f() { int a[2]; return a[5]; }", "f")
        assert exc.value.kind == "bounds"

    def test_array_argument_mutation_visible(self):
        prog = cparse("void f(int a[3]) { a[0] = 99; }")
        data = [1, 2, 3]
        Machine(prog).call("f", data)
        assert data[0] == 99

    def test_malloc_free_and_leak_tracking(self):
        src = """
int f() {
    int *p = malloc(4 * sizeof(int));
    p[2] = 42;
    int v = p[2];
    free(p);
    return v;
}"""
        prog = cparse(src)
        machine = Machine(prog)
        assert machine.call("f").value == 42
        assert machine.live_heap == 0

    def test_use_after_free(self):
        src = "int f() { int *p = malloc(8); free(p); return p[0]; }"
        with pytest.raises(CRuntimeError) as exc:
            self.run(src, "f")
        assert exc.value.kind == "useafterfree"

    def test_double_free(self):
        with pytest.raises(CRuntimeError) as exc:
            self.run("int f() { int *p = malloc(8); free(p); free(p); return 0; }",
                     "f")
        assert exc.value.kind == "doublefree"

    def test_recursion(self):
        src = "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }"
        assert self.run(src, "fact", 6).value == 720

    def test_recursion_depth_limit(self):
        with pytest.raises(CRuntimeError) as exc:
            self.run("int f(int n) { return f(n + 1); }", "f", 0)
        assert exc.value.kind == "stack"

    def test_step_limit(self):
        with pytest.raises(CRuntimeError) as exc:
            Machine(cparse("int f() { while (1) { } return 0; }"),
                    max_steps=10_000).call("f")
        assert exc.value.kind == "timeout"

    def test_printf_output(self):
        prog = cparse('int f() { printf("v=%d\\n", 42); return 0; }')
        machine = Machine(prog)
        machine.call("f")
        assert machine.output == ["v=42"]

    def test_ternary_and_logical(self):
        src = "int f(int a) { return (a > 2 && a < 10) ? 1 : 0; }"
        assert self.run(src, "f", 5).value == 1
        assert self.run(src, "f", 11).value == 0

    def test_trace_events(self):
        prog = cparse("int f(int a) { int b = a + 1; if (b > 2) { b = 0; } return b; }")
        machine = Machine(prog, trace=True)
        machine.call("f", 5)
        kinds = {e.kind for e in machine.trace}
        assert "assign" in kinds and "branch" in kinds

    @given(st.integers(min_value=-1000, max_value=1000),
           st.integers(min_value=-1000, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_add_matches_python(self, a, b):
        assert self.run("int f(int a, int b) { return a + b; }",
                        "f", a, b).value == a + b


class TestFpgaMode:
    def test_width_override_wraps(self):
        src = "int f(int a) { int acc = a; acc = acc + 200; return acc; }"
        prog = cparse(src)
        cpu = Machine(prog).call("f", 100).value
        fpga = Machine(prog, mode="fpga",
                       width_overrides={"acc": 8}).call("f", 100).value
        assert cpu == 300
        assert fpga != cpu  # 300 wraps in 8 bits

    def test_pipeline_hazard_changes_result(self):
        src = """
int f(int d0, int d1, int d2) {
    int data[3];
    data[0] = d0; data[1] = d1; data[2] = d2;
    int acc = 1;
    for (int i = 0; i < 3; i++) {
    #pragma HLS pipeline II=1
        acc = acc * 3 + data[i];
    }
    return acc;
}"""
        prog = cparse(src)
        cpu = Machine(prog).call("f", 5, 6, 7).value
        fpga = Machine(prog, mode="fpga",
                       pipeline_hazard=True).call("f", 5, 6, 7).value
        assert cpu != fpga

    def test_no_hazard_without_pragma(self):
        src = """
int f(int a) {
    int acc = 1;
    for (int i = 0; i < 3; i++) {
        acc = acc * 2 + a;
    }
    return acc;
}"""
        prog = cparse(src)
        cpu = Machine(prog).call("f", 3).value
        fpga = Machine(prog, mode="fpga", pipeline_hazard=True).call("f", 3).value
        assert cpu == fpga

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            Machine(cparse("int f() { return 0; }"), mode="gpu")
