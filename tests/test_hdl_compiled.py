"""Compiled-engine equivalence, selection, caching, and telemetry.

The compiled fast path (``repro.hdl.compiled``) must be *observationally
invisible*: same testbench results, same scheduler statistics, same
fallback behaviour for designs outside its subset.  These tests pin the
equivalence on hand-written designs, the ``REPRO_SIM_ENGINE`` knob, the
program-cache layer, and the per-engine telemetry — including the
regression where bench harnesses with private caches reported all-zero
``hdl.cache.*`` gauges.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.config import get_settings, reset_warned_values
from repro.hdl import (CompileCache, CompiledSim, Simulator, UnsupportedDesign,
                       compile_program, elaborate, parse, run_testbench,
                       set_default_cache, get_default_cache)
from repro.hdl.compiled import XBail
from repro.store import reset_default_store


@pytest.fixture(autouse=True)
def _memory_only_store(monkeypatch):
    """Engine-selection and telemetry assertions need fresh caches to
    actually *simulate*; an ambient ``REPRO_STORE`` (the CI warm-start
    lane) would serve results from disk and skip the paths under test."""
    monkeypatch.setenv("REPRO_STORE", "0")
    reset_default_store()
    yield
    reset_default_store()

COUNTER = """
module counter(input clk, input rst, output reg [7:0] q);
  always @(posedge clk) begin
    if (rst) q <= 8'h0;
    else q <= q + 8'h1;
  end
endmodule
module tb();
  reg clk;
  reg rst;
  wire [7:0] q;
  counter u0(.clk(clk), .rst(rst), .q(q));
  initial begin
    clk = 0;
    rst = 1;
    #2 rst = 0;
    repeat (20) begin
      #1 clk = ~clk;
    end
    $display("final q=%d qb=%b", q, q);
    if (q > 8'h0) $display("PASS: counter advanced to %d", q);
    else $display("FAIL: q=%d", q);
    $finish;
  end
endmodule
"""

XPROP = """
module xmix(input [3:0] a, output [7:0] y);
  reg [3:0] u;
  assign y = {u[1:0], a & 4'b0011, u[3:2]};
endmodule
module tb();
  reg [3:0] a;
  wire [7:0] y;
  xmix u0(.a(a), .y(y));
  initial begin
    a = 4'hf;
    #1;
    $display("y=%b yh=%h", y, y);
    if (y[3:2] == 2'b11) $display("PASS: defined bits survive");
    else $display("FAIL: y=%b", y);
    $finish;
  end
endmodule
"""

DYNAMIC_DELAY = """
module dyn(output reg q);
  reg [3:0] d = 2;
  initial q = 0;
  always begin
    #d q = ~q;
  end
endmodule
module tb();
  wire q;
  dyn u0(.q(q));
  initial begin
    #3;
    if (q == 1'b1) $display("PASS: toggled");
    else $display("FAIL: q=%b", q);
    $finish;
  end
endmodule
"""

X_INDEX_WRITE = """
module tb();
  reg [3:0] y;
  reg [1:0] i;
  initial begin
    y = 4'h0;
    y[i] = 1'b1;
    $display("unreachable");
    $finish;
  end
endmodule
"""


@pytest.fixture(autouse=True)
def _fresh_default_cache():
    old = get_default_cache()
    set_default_cache(CompileCache())
    yield
    set_default_cache(old)


def _run_both(source: str, top: str = "tb", seed: int = 1,
              max_time: int = 10_000):
    design = elaborate(parse(source), top)
    ev = Simulator(design, seed=seed)
    ev.run(max_time=max_time)
    cs = CompiledSim(compile_program(design), seed=seed)
    cs.run(max_time=max_time)
    return ev, cs


class TestEquivalence:
    def test_clocked_counter_byte_identical(self):
        ev, cs = self._assert_identical(COUNTER)
        assert ev.finished

    def test_xprop_design_byte_identical(self):
        ev, cs = self._assert_identical(XPROP)
        assert "x" in "".join(ev.output)  # partial-X actually rendered

    def _assert_identical(self, source):
        ev, cs = _run_both(source)
        assert cs.output == ev.output
        assert cs.finished == ev.finished
        assert cs.error_count == ev.error_count
        assert cs.time == ev.time
        assert cs.stats() == ev.stats()
        return ev, cs

    def test_seed_flows_through(self):
        src = COUNTER.replace('qb=%b", q, q',
                              'qb=%b r=%d", q, q, $random % 16')
        ev, cs = _run_both(src, seed=7)
        assert cs.output == ev.output


class TestSelection:
    def test_dynamic_delay_is_ineligible(self):
        design = elaborate(parse(DYNAMIC_DELAY), "tb")
        with pytest.raises(UnsupportedDesign):
            compile_program(design)

    def test_x_index_write_bails(self):
        design = elaborate(parse(X_INDEX_WRITE), "tb")
        sim = CompiledSim(compile_program(design))
        with pytest.raises(XBail):
            sim.run(max_time=100)

    @pytest.mark.parametrize("source", [COUNTER, DYNAMIC_DELAY,
                                        X_INDEX_WRITE])
    def test_engine_knob_is_invisible(self, source, monkeypatch):
        results = {}
        for mode in ("event", "compiled", "auto"):
            monkeypatch.setenv("REPRO_SIM_ENGINE", mode)
            r = run_testbench(source, "tb", max_time=10_000, seed=1,
                              cache=CompileCache())
            results[mode] = (r.pass_count, r.fail_count, r.error_count,
                             r.finished, r.sim_time, tuple(r.output),
                             r.runtime_error)
        assert results["event"] == results["compiled"] == results["auto"]

    def test_x_index_write_reports_event_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "compiled")
        r = run_testbench(X_INDEX_WRITE, "tb", cache=CompileCache())
        assert "X index" in r.runtime_error

    def test_sim_engine_knob_parsing(self, monkeypatch):
        settings = get_settings()
        monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
        assert settings.sim_engine == "auto"
        monkeypatch.setenv("REPRO_SIM_ENGINE", "compiled")
        assert settings.sim_engine == "compiled"
        monkeypatch.setenv("REPRO_SIM_ENGINE", "EVENT")
        assert settings.sim_engine == "event"
        reset_warned_values()
        monkeypatch.setenv("REPRO_SIM_ENGINE", "bogus")
        with pytest.warns(RuntimeWarning):
            assert settings.sim_engine == "auto"
        assert "sim_engine" in settings.snapshot()


class TestProgramCache:
    def test_program_compiled_once_across_seeds(self):
        cache = CompileCache()
        run_testbench(COUNTER, "tb", seed=1, cache=cache)
        run_testbench(COUNTER, "tb", seed=2, cache=cache)
        stats = cache.stats_dict()
        assert stats["program"]["misses"] == 1
        assert stats["program"]["hits"] == 1

    def test_ineligible_design_analysed_once(self):
        cache = CompileCache()
        run_testbench(DYNAMIC_DELAY, "tb", seed=1, cache=cache)
        run_testbench(DYNAMIC_DELAY, "tb", seed=2, cache=cache)
        stats = cache.stats_dict()
        assert stats["program"]["misses"] == 1
        assert stats["program"]["hits"] == 1

    def test_program_survives_pickle_round_trip(self):
        import pickle
        design = elaborate(parse(COUNTER), "tb")
        program = pickle.loads(pickle.dumps(compile_program(design)))
        sim = CompiledSim(program, seed=1)
        sim.run(max_time=10_000)
        assert sim.finished


class TestTelemetry:
    @pytest.fixture(autouse=True)
    def _traced(self):
        self.sink = obs.InMemorySink()
        obs.install_tracer(obs.Tracer(self.sink, enabled=True))
        obs.reset_metrics()
        yield
        obs.reset_tracer()
        obs.reset_metrics()

    def test_traced_run_reports_nonzero_cache_gauges(self):
        # Regression: bench harnesses compile via *private* caches, which
        # left every hdl.cache.* gauge at 0.0 in the written snapshot.
        # The cumulative gauges must see activity regardless of instance.
        cache = CompileCache()   # private, like benchmarks/_util.py
        run_testbench(COUNTER, "tb", seed=1, cache=cache)
        record = obs.flush_metrics()
        gauges = record["gauges"]
        lookups = sum(v for k, v in gauges.items()
                      if k.startswith("hdl.cache_cumulative.parse."))
        assert lookups > 0

    def test_backend_counters_tagged(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "compiled")
        run_testbench(COUNTER, "tb", seed=1, cache=CompileCache())
        monkeypatch.setenv("REPRO_SIM_ENGINE", "event")
        run_testbench(COUNTER, "tb", seed=2, cache=CompileCache())
        counters = obs.get_metrics().snapshot()["counters"]
        assert counters["sim.backend.compiled.runs"] == 1
        assert counters["sim.backend.event.runs"] == 1
        assert counters["sim.runs"] == 2

    def test_sim_spans_carry_backend_attr(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "compiled")
        run_testbench(COUNTER, "tb", seed=1, cache=CompileCache())
        spans = [r for r in self.sink.records if r.get("type") == "span"
                 and r.get("name") == "hdl.sim"]
        assert spans and spans[-1]["attrs"]["backend"] == "compiled"

    def test_engine_table_renders_breakdown(self, monkeypatch):
        from repro.obs import report
        monkeypatch.setenv("REPRO_SIM_ENGINE", "compiled")
        run_testbench(COUNTER, "tb", seed=1, cache=CompileCache())
        run_testbench(DYNAMIC_DELAY, "tb", seed=1, cache=CompileCache())
        obs.flush_metrics()
        table = report.engine_table(self.sink.records)
        assert "compiled" in table and "event" in table
        assert "ineligible" in table
        assert table in report.render(self.sink.records)
