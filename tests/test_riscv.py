"""Tests for the RISC-V substrate: ISA, assembler, compiler, core, power."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hls import Machine, cparse
from repro.riscv import (AsmError, CompileError, CoreConfig, CoreStats,
                         ExecutionFault, FpgaPowerMeter, Instruction,
                         STATIC_POWER_W, assemble, compile_program, decode,
                         encode, estimate_power, parse_register, run_program)
from repro.riscv.core import Core


class TestIsa:
    def test_register_names(self):
        assert parse_register("sp") == 2
        assert parse_register("x31") == 31
        assert parse_register("a0") == 10
        with pytest.raises(ValueError):
            parse_register("x32")

    @pytest.mark.parametrize("instr", [
        Instruction("add", rd=1, rs1=2, rs2=3),
        Instruction("sub", rd=31, rs1=0, rs2=15),
        Instruction("mul", rd=5, rs1=6, rs2=7),
        Instruction("div", rd=5, rs1=6, rs2=7),
        Instruction("addi", rd=4, rs1=4, imm=-7),
        Instruction("slli", rd=4, rs1=4, imm=5),
        Instruction("srai", rd=4, rs1=4, imm=3),
        Instruction("lw", rd=8, rs1=2, imm=-12),
        Instruction("sw", rs1=2, rs2=9, imm=2040),
        Instruction("beq", rs1=1, rs2=2, imm=-8),
        Instruction("bge", rs1=1, rs2=2, imm=4094),
        Instruction("jal", rd=1, imm=2048),
        Instruction("jalr", rd=0, rs1=1, imm=0),
        Instruction("lui", rd=3, imm=0xFFFFF),
    ], ids=str)
    def test_encode_decode_roundtrip(self, instr):
        decoded = decode(encode(instr))
        assert decoded.mnemonic == instr.mnemonic
        assert decoded.rd == instr.rd or instr.spec.fmt in ("S", "B")
        if instr.spec.fmt in ("I", "S", "B", "J", "U"):
            assert decoded.imm == instr.imm

    @given(st.sampled_from(["add", "sub", "xor", "and", "mul", "rem"]),
           st.integers(0, 31), st.integers(0, 31), st.integers(0, 31))
    @settings(max_examples=40, deadline=None)
    def test_rtype_roundtrip_property(self, m, rd, rs1, rs2):
        instr = Instruction(m, rd=rd, rs1=rs1, rs2=rs2)
        decoded = decode(encode(instr))
        assert (decoded.mnemonic, decoded.rd, decoded.rs1, decoded.rs2) \
            == (m, rd, rs1, rs2)

    def test_decode_garbage_raises(self):
        with pytest.raises(ValueError):
            decode(0xFFFFFFFF)


class TestAssembler:
    def test_labels_and_branches(self):
        prog = assemble("""
_start:
    li t0, 3
loop:
    addi t0, t0, -1
    bnez t0, loop
    halt
""")
        assert "loop" in prog.labels
        stats = run_program(prog)
        assert stats.halted

    def test_li_large_constant(self):
        prog = assemble("_start:\n  li a0, 0x12345\n  halt")
        stats = run_program(prog)
        assert stats.return_value == 0x12345

    def test_li_negative(self):
        prog = assemble("_start:\n  li a0, -5\n  halt")
        assert run_program(prog).return_value == -5

    def test_memory_operands(self):
        prog = assemble("""
_start:
    li sp, 0x1000
    li t0, 77
    sw t0, -4(sp)
    lw a0, -4(sp)
    halt
""")
        assert run_program(prog).return_value == 77

    def test_pseudo_instructions(self):
        prog = assemble("""
_start:
    li t0, 5
    mv a0, t0
    neg a0, a0
    not a0, a0
    halt
""")
        # not(neg(5)) = not(-5) = 4
        assert run_program(prog).return_value == 4

    def test_undefined_label(self):
        with pytest.raises(AsmError):
            assemble("_start:\n  j nowhere")

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError):
            assemble("_start:\n  frobnicate a0, a1")

    def test_disassembly_roundtrip(self):
        prog = assemble("_start:\n  li t0, 3\n  add a0, t0, t0\n  halt")
        text = prog.disassemble()
        assert "add a0, t0, t0" in text


class TestCompiler:
    def run_c(self, src, expect=None):
        prog = assemble(compile_program(src))
        stats = run_program(prog)
        if expect is not None:
            assert stats.return_value == expect
        return stats

    def test_arith(self):
        self.run_c("int main() { return 6 * 7; }", 42)

    def test_locals_and_compound_assign(self):
        self.run_c("int main() { int x = 10; x += 5; x *= 2; return x; }", 30)

    def test_if_else(self):
        self.run_c("int main() { int a = 3; if (a > 2) { return 1; } "
                   "else { return 0; } }", 1)

    def test_for_loop(self):
        self.run_c("int main() { int s = 0; "
                   "for (int i = 1; i <= 10; i++) { s += i; } return s; }", 55)

    def test_while_break_continue(self):
        self.run_c("""
int main() {
    int s = 0;
    int i = 0;
    while (1) {
        i++;
        if (i > 10) { break; }
        if (i % 2 == 0) { continue; }
        s += i;
    }
    return s;
}""", 25)

    def test_arrays(self):
        self.run_c("""
int main() {
    int a[5];
    for (int i = 0; i < 5; i++) { a[i] = i * i; }
    int s = 0;
    for (int i = 0; i < 5; i++) { s += a[i]; }
    return s;
}""", 30)

    def test_function_calls(self):
        self.run_c("""
int square(int x) { return x * x; }
int main() {
    int a = square(5);
    int b = square(6);
    return a + b;
}""", 61)

    def test_recursion(self):
        self.run_c("""
int fib(int n) {
    if (n < 2) { return n; }
    int a = fib(n - 1);
    int b = fib(n - 2);
    return a + b;
}
int main() { return fib(10); }""", 55)

    def test_division_and_modulo(self):
        self.run_c("int main() { return 100 / 7 + 100 % 7; }", 16)

    def test_ternary(self):
        self.run_c("int main() { int a = 5; return a > 3 ? 10 : 20; }", 10)

    def test_logical_short_circuit(self):
        self.run_c("int main() { int a = 0; "
                   "return (a != 0 && 10 / a > 1) ? 1 : 2; }", 2)

    def test_builtin_abs_min_max(self):
        self.run_c("int main() { return abs(0 - 5) + min(3, 9) + max(3, 9); }",
                   17)

    def test_matches_interpreter(self):
        """Cross-check: the compiler+core agree with the C interpreter."""
        src = """
int work(int n) {
    int arr[8];
    int acc = 0;
    for (int i = 0; i < 8; i++) { arr[i] = i * n + (i ^ n); }
    for (int i = 0; i < 8; i++) {
        if (arr[i] % 3 == 0) { acc += arr[i]; }
        else { acc -= i; }
    }
    return acc;
}
int main() { return work(7); }
"""
        interp = Machine(cparse(src)).call("work", 7).value
        core = self.run_c(src).return_value
        assert interp == core

    def test_too_many_params(self):
        with pytest.raises(CompileError):
            compile_program("int f(int a, int b, int c, int d, int e, "
                            "int f_, int g) { return 0; } int main() { return 0; }")

    def test_undefined_variable(self):
        with pytest.raises(CompileError):
            compile_program("int main() { return ghost; }")


class TestCore:
    def test_ipc_bounded_by_fetch_width(self):
        stats = run_program(assemble(compile_program(
            "int main() { int s = 0; for (int i = 0; i < 500; i++) "
            "{ s += i; } return s; }")))
        assert 0 < stats.ipc <= CoreConfig().fetch_width

    def test_timeout_detection(self):
        src = "_start:\nspin:\n  j spin"
        with pytest.raises(ExecutionFault):
            Core(CoreConfig(max_instructions=1000)).run(assemble(src))

    def test_branch_stats_tracked(self):
        stats = run_program(assemble(compile_program(
            "int main() { int s = 0; for (int i = 0; i < 100; i++) "
            "{ if (i % 3 == 0) { s += 1; } } return s; }")))
        assert stats.branch_count > 100
        assert 0 <= stats.mispredict_rate <= 1

    def test_cache_misses_for_large_strides(self):
        small = run_program(assemble(compile_program("""
int main() {
    int a[16];
    int s = 0;
    for (int r = 0; r < 20; r++)
        for (int i = 0; i < 16; i++) { a[i] = i; s += a[i]; }
    return s;
}""")))
        assert small.cache_misses < small.mem_reads + small.mem_writes

    def test_unit_activity_in_range(self):
        stats = run_program(assemble(compile_program(
            "int main() { int s = 1; for (int i = 0; i < 100; i++) "
            "{ s = s * 3 + i; } return s; }")))
        for unit, act in stats.unit_activity.items():
            assert 0.0 <= act <= 1.0, unit


class TestPower:
    def _stats(self, src) -> CoreStats:
        return run_program(assemble(compile_program(src)))

    def test_power_above_static_floor(self):
        stats = self._stats("int main() { int s = 0; for (int i = 0; i < 200; "
                            "i++) { s += i; } return s; }")
        power = estimate_power(stats)
        assert power.total_w > STATIC_POWER_W

    def test_mul_heavy_burns_more_than_idleish(self):
        lean = self._stats("int main() { int s = 0; for (int i = 0; i < 300; "
                           "i++) { s = s | 1; } return s; }")
        muls = self._stats("""
int main() {
    int a = 0x5A5A; int b = 0x1234; int s1 = 1; int s2 = 2;
    for (int i = 0; i < 300; i++) {
        s1 = s1 + a * b; s2 = s2 + b * s1; a = a ^ s2; b = b + 7;
    }
    return s1 + s2;
}""")
        assert estimate_power(muls).unit_w["mul"] \
            > estimate_power(lean).unit_w["mul"]

    def test_breakdown_sums_to_total(self):
        stats = self._stats("int main() { return 1; }")
        p = estimate_power(stats)
        parts = (p.static_w + p.frontend_w + p.rob_w + sum(p.unit_w.values())
                 + p.branch_recovery_w + p.memory_w)
        assert p.total_w == pytest.approx(parts)


class TestFpgaMeter:
    def test_measurement_advances_clock(self):
        meter = FpgaPowerMeter(seed=1)
        m = meter.measure_c("int main() { return 3; }")
        assert m.ok and m.watts > 0
        assert meter.elapsed_seconds == pytest.approx(
            meter.seconds_per_measurement)

    def test_noise_is_seeded(self):
        a = FpgaPowerMeter(seed=5).measure_c("int main() { return 3; }").watts
        b = FpgaPowerMeter(seed=5).measure_c("int main() { return 3; }").watts
        assert a == b

    def test_compile_error_fails_fast(self):
        meter = FpgaPowerMeter(seed=1)
        m = meter.measure_c("int main( {")
        assert not m.ok
        assert meter.elapsed_seconds == pytest.approx(
            meter.seconds_per_failure)

    def test_runtime_fault_scores_zero(self):
        meter = FpgaPowerMeter(seed=1,
                               config=CoreConfig(max_instructions=500))
        m = meter.measure_c("int main() { while (1) { } return 0; }")
        assert not m.ok and "timeout" in m.error
