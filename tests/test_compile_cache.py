"""Compile-cache correctness: hits equal cold compiles, eviction is
bounded, and caller mutation cannot poison the cache."""

import pickle

import pytest

from repro.bench.problems import all_problems
from repro.hdl import (CompileCache, HdlError, compile_design,
                       get_default_cache, run_testbench, set_default_cache,
                       source_key)
from repro.hdl.testbench import StimulusRunner
from repro.store import reset_default_store


PROBLEM = all_problems()[3]


@pytest.fixture(autouse=True)
def _memory_only_store(monkeypatch):
    """These tests pin the *memory tier's* cold/hit/eviction contract; an
    ambient ``REPRO_STORE`` (e.g. the CI warm-start lane) would satisfy
    cold lookups from disk and break the assertions."""
    monkeypatch.setenv("REPRO_STORE", "0")
    reset_default_store()
    yield
    reset_default_store()


@pytest.fixture()
def cache():
    return CompileCache()


@pytest.fixture(autouse=True)
def _fresh_default_cache():
    old = get_default_cache()
    set_default_cache(CompileCache())
    yield
    set_default_cache(old)


class TestCacheEquivalence:
    def test_hit_equals_cold_compile(self, cache):
        units = (PROBLEM.reference, PROBLEM.testbench)
        cold = compile_design(units, PROBLEM.tb_name, cache=cache)
        hit = compile_design(units, PROBLEM.tb_name, cache=cache)
        assert not cold.from_cache
        assert hit.from_cache
        assert pickle.dumps(cold.design) == pickle.dumps(hit.design)
        assert cold.key == hit.key

    def test_cached_run_matches_cold_run(self, cache):
        cold = run_testbench(PROBLEM.reference, PROBLEM.tb_name,
                             tb_source=PROBLEM.testbench, cache=cache)
        warm = run_testbench(PROBLEM.reference, PROBLEM.tb_name,
                             tb_source=PROBLEM.testbench, cache=cache)
        assert pickle.dumps(cold) == pickle.dumps(warm)
        assert cache.stats_dict()["result"]["hits"] >= 1

    def test_split_compile_matches_concatenated(self, cache):
        """DUT+TB compiled as separate units elaborates identically to the
        legacy single concatenated source."""
        legacy = run_testbench(
            PROBLEM.reference + "\n" + PROBLEM.testbench, PROBLEM.tb_name)
        split = run_testbench(PROBLEM.reference, PROBLEM.tb_name,
                              tb_source=PROBLEM.testbench, cache=cache)
        assert pickle.dumps(legacy) == pickle.dumps(split)

    def test_compile_error_text_matches_legacy(self, cache):
        """Feedback text feeds seeded repair loops, so the split-compile
        path must report byte-identical compile errors."""
        broken = "module broken(input a, output y); assign y = ; endmodule"
        split = run_testbench(broken, PROBLEM.tb_name,
                              tb_source=PROBLEM.testbench, cache=cache)
        legacy = run_testbench(broken + "\n" + PROBLEM.testbench,
                               PROBLEM.tb_name)
        assert pickle.dumps(split) == pickle.dumps(legacy)
        assert split.feedback() == legacy.feedback()

    def test_testbench_compiles_once_per_suite(self, cache):
        """Distinct candidates against the same bench re-parse only the
        candidate: the testbench parse is a hit from the second run on."""
        tmpl = ("module cand(input [3:0] a, output [3:0] y); "
                "assign y = a ^ 4'd{};\nendmodule")
        for i in range(4):
            try:
                run_testbench(tmpl.format(i), PROBLEM.tb_name,
                              tb_source=PROBLEM.testbench, cache=cache)
            except HdlError:
                pass  # candidate/TB port mismatch is fine; parses still count
        assert cache.stats_dict()["parse"]["hits"] >= 3  # TB reused, runs 2..4


class TestBoundedEviction:
    def test_parse_cache_is_bounded(self):
        cache = CompileCache(parse_capacity=4)
        for i in range(10):
            src = f"module m{i}(input a, output y); assign y = a; endmodule"
            cache.parse(src)
        stats = cache.stats_dict()["parse"]
        assert stats["size"] <= 4
        assert stats["evictions"] >= 6

    def test_result_cache_is_bounded(self):
        cache = CompileCache(result_capacity=3)
        for i in range(8):
            cache.put_result(("tb", f"k{i}"), {"i": i})
        assert cache.stats_dict()["result"]["size"] <= 3
        assert cache.get_result(("tb", "k0")) is None
        assert cache.get_result(("tb", "k7")) == {"i": 7}

    def test_evicted_entry_recompiles_correctly(self):
        cache = CompileCache(design_capacity=1, parse_capacity=2)
        units = (PROBLEM.reference, PROBLEM.testbench)
        first = compile_design(units, PROBLEM.tb_name, cache=cache)
        other = all_problems()[4]
        compile_design((other.reference, other.testbench), other.tb_name,
                       cache=cache)
        again = compile_design(units, PROBLEM.tb_name, cache=cache)
        assert pickle.dumps(first.design) == pickle.dumps(again.design)


class TestPoisonSafety:
    def test_mutating_returned_design_does_not_poison(self, cache):
        units = (PROBLEM.reference, PROBLEM.testbench)
        first = compile_design(units, PROBLEM.tb_name, cache=cache)
        baseline = pickle.dumps(first.design)
        # Vandalize everything reachable from the returned object.
        first.design.signals.clear()
        first.design.processes.clear()
        second = compile_design(units, PROBLEM.tb_name, cache=cache)
        assert second.from_cache
        assert pickle.dumps(second.design) == baseline

    def test_mutating_result_does_not_poison(self, cache):
        first = run_testbench(PROBLEM.reference, PROBLEM.tb_name,
                              tb_source=PROBLEM.testbench, cache=cache)
        baseline = pickle.dumps(first)
        first.output.clear()
        first.runtime_error = "vandalized"
        second = run_testbench(PROBLEM.reference, PROBLEM.tb_name,
                               tb_source=PROBLEM.testbench, cache=cache)
        assert pickle.dumps(second) == baseline

    def test_mutating_parsed_ast_does_not_poison(self, cache):
        src = "module p(input a, output y); assign y = ~a; endmodule"
        first = cache.parse(src)
        first.source_file.modules.clear()
        second = cache.parse(src)
        assert "p" in second.source_file.modules

    def test_stimulus_runner_isolated_from_cache(self, cache):
        src = ("module dut(input clk, input [3:0] a, output [3:0] y);\n"
               "  assign y = a + 4'd1;\nendmodule")
        r1 = StimulusRunner(src, "dut", cache=cache)
        r1.design.signals.clear()
        r2 = StimulusRunner(src, "dut", cache=cache)
        assert r2.design.signals  # fresh materialization, not the mutated one


class TestKnobs:
    def test_source_key_is_content_hash(self):
        assert source_key("module m; endmodule") == \
            source_key("module m; endmodule")
        assert source_key("module m; endmodule") != \
            source_key("module n; endmodule")

    def test_cache_disable_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_HDL_CACHE", "0")
        cache = CompileCache()
        units = (PROBLEM.reference, PROBLEM.testbench)
        compile_design(units, PROBLEM.tb_name, cache=cache)
        second = compile_design(units, PROBLEM.tb_name, cache=cache)
        assert not second.from_cache

    def test_stats_shape(self, cache):
        units = (PROBLEM.reference, PROBLEM.testbench)
        compile_design(units, PROBLEM.tb_name, cache=cache)
        compile_design(units, PROBLEM.tb_name, cache=cache)
        stats = cache.stats_dict()
        assert set(stats) == {"parse", "design", "result", "program"}
        assert stats["design"]["hits"] == 1
        assert stats["design"]["misses"] == 1
        assert 0.0 < stats["design"]["hit_rate"] <= 1.0


class TestThreadSafety:
    def test_lru_blob_cache_hammer(self):
        # Many threads hitting a small LRU concurrently: stats must stay
        # consistent (hits + misses == lookups issued), entries must never
        # be torn, and the cache must respect its capacity bound.
        import threading

        from repro.hdl.compile import _LruBlobCache

        cache = _LruBlobCache(capacity=16)
        threads_n, iters, keyspace = 8, 400, 48
        errors: list[str] = []
        barrier = threading.Barrier(threads_n)

        def worker(tid: int) -> None:
            rng = __import__("random").Random(tid)
            barrier.wait()
            for i in range(iters):
                key = f"k{rng.randrange(keyspace)}"
                blob = cache.get(key)
                if blob is None:
                    cache.put(key, key.encode())
                elif blob != key.encode():
                    errors.append(f"torn read: {key!r} -> {blob!r}")

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert not errors
        stats = cache.stats
        assert stats.hits + stats.misses == threads_n * iters
        assert stats.hits > 0 and stats.misses > 0
        assert len(cache) <= 16
        # Entries still serve correct bytes after the stampede.
        for key in [f"k{i}" for i in range(keyspace)]:
            blob = cache.get(key)
            assert blob is None or blob == key.encode()
