"""Tests for the logic-synthesis package."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hdl import parse_module
from repro.synth import (Aig, FALSE, TRUE, SynthesisError, check_aigs,
                         check_against_simulation, estimate_ppa, map_to_cells,
                         map_to_luts, negate, optimize, synthesize_module)
from repro.synth.optimize import balance, rewrite, sweep


class TestAig:
    def test_constant_folding(self):
        aig = Aig()
        a = aig.add_input("a")
        assert aig.and_(a, FALSE) == FALSE
        assert aig.and_(a, TRUE) == a
        assert aig.and_(a, a) == a
        assert aig.and_(a, negate(a)) == FALSE

    def test_structural_hashing(self):
        aig = Aig()
        a = aig.add_input("a")
        b = aig.add_input("b")
        assert aig.and_(a, b) == aig.and_(b, a)
        assert aig.num_ands == 1

    def test_or_demorgan(self):
        aig = Aig()
        a = aig.add_input("a")
        b = aig.add_input("b")
        aig.add_output("y", aig.or_(a, b))
        assert aig.evaluate({"a": True, "b": False})["y"] is True
        assert aig.evaluate({"a": False, "b": False})["y"] is False

    def test_xor_truth_table(self):
        aig = Aig()
        a = aig.add_input("a")
        b = aig.add_input("b")
        aig.add_output("y", aig.xor_(a, b))
        for va in (False, True):
            for vb in (False, True):
                assert aig.evaluate({"a": va, "b": vb})["y"] == (va != vb)

    def test_mux(self):
        aig = Aig()
        s = aig.add_input("s")
        a = aig.add_input("a")
        b = aig.add_input("b")
        aig.add_output("y", aig.mux(s, a, b))
        assert aig.evaluate({"s": True, "a": True, "b": False})["y"]
        assert not aig.evaluate({"s": False, "a": True, "b": False})["y"]

    def test_depth_and_cleanup(self):
        aig = Aig()
        a = aig.add_input("a")
        b = aig.add_input("b")
        c = aig.add_input("c")
        aig.and_(a, b)  # dangling
        aig.add_output("y", aig.and_(aig.and_(a, b), c))
        cleaned = aig.cleanup()
        assert cleaned.num_ands == 2
        assert cleaned.depth() == 2

    def test_evaluate_words_matches_scalar(self):
        aig = Aig()
        a = aig.add_input("a")
        b = aig.add_input("b")
        aig.add_output("y", aig.xor_(a, b))
        words = aig.evaluate_words({"a": 0b1100, "b": 0b1010}, bits=4)
        assert words["y"] == 0b0110

    def test_missing_input_raises(self):
        aig = Aig()
        aig.add_input("a")
        aig.add_output("y", 2)
        with pytest.raises(KeyError):
            aig.evaluate({})


def _synth(src, name=None):
    return synthesize_module(parse_module(src, name))


class TestSynthesize:
    def test_adder_equivalent_to_sim(self):
        src = """
module add(input [3:0] a, input [3:0] b, output [4:0] y);
  assign y = a + b;
endmodule"""
        s = _synth(src)
        cec = check_against_simulation(s, src, parse_module(src), vectors=30)
        assert cec.equivalent, cec.counterexample

    def test_subtract_and_compare(self):
        src = """
module cmp(input [3:0] a, input [3:0] b, output lt, output [3:0] d);
  assign lt = a < b;
  assign d = a - b;
endmodule"""
        s = _synth(src)
        assert check_against_simulation(s, src, parse_module(src),
                                        vectors=40).equivalent

    def test_multiplier(self):
        src = """
module mul(input [3:0] a, input [3:0] b, output [7:0] y);
  assign y = a * b;
endmodule"""
        s = _synth(src)
        assert check_against_simulation(s, src, parse_module(src),
                                        vectors=40).equivalent

    def test_comb_always_case(self):
        src = """
module alu(input [3:0] a, input [3:0] b, input [1:0] op, output reg [3:0] y);
  always @(*) begin
    case (op)
      2'd0: y = a + b;
      2'd1: y = a & b;
      2'd2: y = a | b;
      default: y = a ^ b;
    endcase
  end
endmodule"""
        s = _synth(src)
        assert check_against_simulation(s, src, parse_module(src),
                                        vectors=40).equivalent

    def test_dynamic_shift(self):
        src = """
module sh(input [7:0] a, input [2:0] n, output [7:0] y);
  assign y = a << n;
endmodule"""
        s = _synth(src)
        assert check_against_simulation(s, src, parse_module(src),
                                        vectors=40).equivalent

    def test_ternary_and_concat(self):
        src = """
module t(input s, input [3:0] a, input [3:0] b, output [7:0] y);
  assign y = s ? {a, b} : {b, a};
endmodule"""
        s = _synth(src)
        assert check_against_simulation(s, src, parse_module(src),
                                        vectors=30).equivalent

    def test_for_loop_unrolled(self):
        src = """
module rev(input [3:0] a, output reg [3:0] y);
  integer i;
  always @(*) begin
    for (i = 0; i < 4; i = i + 1)
      y[i] = a[3 - i];
  end
endmodule"""
        s = _synth(src)
        assert check_against_simulation(s, src, parse_module(src),
                                        vectors=16).equivalent

    def test_function_lowering(self):
        src = """
module f(input [3:0] a, output [3:0] y);
  function [3:0] inc;
    input [3:0] v;
    begin
      inc = v + 1;
    end
  endfunction
  assign y = inc(a);
endmodule"""
        s = _synth(src)
        assert check_against_simulation(s, src, parse_module(src),
                                        vectors=16).equivalent

    def test_sequential_flops_extracted(self):
        s = _synth("""
module ctr(input clk, input rst, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 0;
    else q <= q + 1;
  end
endmodule""")
        assert s.is_sequential
        assert s.flops[0].name == "q" and s.flops[0].width == 4
        out_names = {name for name, _ in s.aig.outputs}
        assert "q$next[0]" in out_names

    def test_latch_raises(self):
        with pytest.raises(SynthesisError):
            _synth("""
module l(input s, input d, output reg q);
  always @(*) begin
    if (s) q = d;
  end
endmodule""")

    def test_comb_loop_raises(self):
        with pytest.raises(SynthesisError):
            _synth("""
module loop(output a);
  wire b;
  assign a = ~b;
  assign b = a;
endmodule""")

    def test_multiple_drivers_raises(self):
        with pytest.raises(SynthesisError):
            _synth("""
module m(input a, output y);
  assign y = a;
  assign y = ~a;
endmodule""")

    def test_division_by_nonconst_raises(self):
        with pytest.raises(SynthesisError):
            _synth("module d(input [3:0] a, input [3:0] b, output [3:0] y); "
                   "assign y = a / b; endmodule")

    def test_division_by_power_of_two(self):
        src = """
module d(input [7:0] a, output [7:0] q, output [7:0] r);
  assign q = a / 4;
  assign r = a % 4;
endmodule"""
        s = _synth(src)
        assert check_against_simulation(s, src, parse_module(src),
                                        vectors=30).equivalent


class TestOptimizeAndMap:
    def _example(self):
        return _synth("""
module f(input [3:0] a, input [3:0] b, output [3:0] y);
  assign y = (a & b) | (a ^ b);
endmodule""")

    def test_passes_preserve_function(self):
        s = self._example()
        for fn in (sweep, rewrite, balance):
            out = fn(s.aig)
            cec = check_aigs(s.aig, out)
            assert cec.equivalent, f"{fn.__name__} broke equivalence"

    def test_optimize_script_runs_and_records(self):
        s = self._example()
        result = optimize(s.aig)
        assert result.history[0]["pass"] == "initial"
        assert len(result.history) >= 4
        assert check_aigs(s.aig, result.aig).equivalent

    def test_optimize_never_grows_much(self):
        s = self._example()
        result = optimize(s.aig)
        assert result.aig.num_ands <= s.aig.num_ands * 2

    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError):
            optimize(self._example().aig, ("bogus",))

    def test_lut_mapping(self):
        s = self._example()
        mapping = map_to_luts(s.aig, k=4)
        assert mapping.lut_count > 0
        assert mapping.depth >= 1
        # LUT count never exceeds AND count.
        assert mapping.lut_count <= s.aig.num_ands

    def test_lut_size_validation(self):
        with pytest.raises(ValueError):
            map_to_luts(self._example().aig, k=1)

    def test_cell_mapping_area_positive(self):
        cells = map_to_cells(self._example().aig)
        assert cells.area > 0 and cells.gate_count > 0

    def test_ppa_report(self):
        s = _synth("""
module ctr(input clk, output reg [3:0] q);
  always @(posedge clk) q <= q + 1;
endmodule""")
        report = estimate_ppa(s)
        assert report.flop_count == 4
        assert report.area_um2 > 0 and report.delay_ns > 0
        assert report.power_uw > 0
        assert report.max_frequency_mhz > 0
        assert "area" in report.summary()


class TestCec:
    def test_exhaustive_counterexample(self):
        a = Aig()
        x = a.add_input("x")
        a.add_output("y", x)
        b = Aig()
        x2 = b.add_input("x")
        b.add_output("y", negate(x2))
        cec = check_aigs(a, b)
        assert not cec.equivalent and cec.exhaustive
        assert cec.counterexample is not None

    def test_no_shared_outputs(self):
        a = Aig()
        a.add_output("p", a.add_input("x"))
        b = Aig()
        b.add_output("q", b.add_input("x"))
        assert not check_aigs(a, b).equivalent


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=255))
def test_synthesized_adder_matches_python(a, b):
    src = """
module add(input [7:0] a, input [7:0] b, output [8:0] y);
  assign y = a + b;
endmodule"""
    s = synthesize_module(parse_module(src))
    assign = {}
    for i in range(8):
        assign[f"a[{i}]"] = bool((a >> i) & 1)
        assign[f"b[{i}]"] = bool((b >> i) & 1)
    out = s.aig.evaluate({n: assign.get(n, False) for n in s.aig.inputs})
    value = sum(1 << i for i in range(9) if out.get(f"y[{i}]", False))
    assert value == a + b
