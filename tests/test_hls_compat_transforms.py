"""Tests for HLS compatibility checking and repair templates."""

import pytest

from repro.hls import (check_compatibility, cparse, loop_bound, program_str,
                       templates_for)
from repro.hls.cast import CFor
from repro.hls.compat import HlsIssue
from repro.hls.interp import Machine
from repro.hls.transforms import TEMPLATES


def issues_of(src, top=None):
    return check_compatibility(cparse(src), top).issues


def codes_of(src, top=None):
    return {i.code for i in issues_of(src, top)}


class TestCompatChecker:
    def test_clean_kernel(self):
        src = """
int f(int a[8], int k) {
    int s = 0;
    for (int i = 0; i < 8; i++) s += a[i] * k;
    return s;
}"""
        assert codes_of(src) == set()

    def test_malloc_detected_and_tool_visible(self):
        report = check_compatibility(cparse(
            "int f() { int *p = malloc(16); return 0; }"))
        assert any(i.code == "HLS001" and i.tool_reported
                   for i in report.issues)
        assert "HLS001" in report.error_log()

    def test_printf_detected(self):
        assert "HLS005" in codes_of('int f() { printf("x"); return 0; }')

    def test_while_is_latent(self):
        report = check_compatibility(cparse(
            "int f(int a) { while (a > 0) { a--; } return a; }"))
        latent = {i.code for i in report.latent}
        assert "HLS003" in latent

    def test_recursion_detected(self):
        assert "HLS002" in codes_of(
            "int f(int n) { if (n == 0) { return 0; } return f(n - 1); }")

    def test_mutual_recursion_detected(self):
        src = """
int g(int n);
int f(int n) { if (n == 0) { return 0; } return g(n - 1); }
int g(int n) { return f(n); }
"""
        assert "HLS002" in codes_of(src)

    def test_unsized_pointer_param(self):
        assert "HLS004" in codes_of("int f(int *p) { return p[0]; }")

    def test_dynamic_division(self):
        assert "HLS009" in codes_of("int f(int a, int b) { return a / b; }")

    def test_constant_division_ok(self):
        assert "HLS009" not in codes_of("int f(int a) { return a / 4; }")

    def test_global_state(self):
        assert "HLS008" in codes_of("int counter;\nint f() { return counter; }")

    def test_top_restricts_scope(self):
        src = """
int helper() { printf("log"); return 1; }
int clean(int a) { return a + 1; }
"""
        assert "HLS005" not in codes_of(src, top="clean")


class TestLoopBound:
    def _loop(self, src):
        prog = cparse(src)
        func = next(iter(prog.functions.values()))
        return [s for s in func.body.stmts if isinstance(s, CFor)][0]

    def test_simple_bound(self):
        loop = self._loop("int f() { for (int i = 0; i < 10; i++) { } return 0; }")
        assert loop_bound(loop) == 10

    def test_le_bound(self):
        loop = self._loop("int f() { for (int i = 0; i <= 10; i++) { } return 0; }")
        assert loop_bound(loop) == 11

    def test_strided(self):
        loop = self._loop("int f() { for (int i = 0; i < 10; i += 3) { } return 0; }")
        assert loop_bound(loop) == 4

    def test_down_counting(self):
        loop = self._loop("int f() { for (int i = 9; i >= 0; i--) { } return 0; }")
        assert loop_bound(loop) == 10

    def test_dynamic_bound_is_none(self):
        loop = self._loop("int f(int n) { for (int i = 0; i < n; i++) { } return 0; }")
        assert loop_bound(loop) is None


class TestTemplates:
    def _apply(self, template_id, src, top="f"):
        prog = cparse(src)
        report = check_compatibility(prog, top)
        template = next(t for t in TEMPLATES if t.template_id == template_id)
        issue = next((i for i in report.issues
                      if i.code in template.issue_codes), None)
        if issue is None:
            issue = HlsIssue(template.issue_codes[0], "synthetic", 1, top,
                             True)
        return template.apply(prog, issue)

    def test_every_issue_code_has_template(self):
        for code in ("HLS001", "HLS002", "HLS003", "HLS004", "HLS005",
                     "HLS006", "HLS009"):
            assert templates_for(code), f"no template for {code}"

    def test_malloc_to_static_preserves_semantics(self):
        src = """
int f(int n) {
    int *buf = malloc(8 * sizeof(int));
    int s = 0;
    for (int i = 0; i < 8; i++) { buf[i] = i * n; }
    for (int i = 0; i < 8; i++) { s += buf[i]; }
    free(buf);
    return s;
}"""
        outcome = self._apply("malloc_to_static", src)
        assert outcome.applied
        assert "malloc" not in program_str(outcome.program)
        before = Machine(cparse(src)).call("f", 3).value
        after = Machine(outcome.program).call("f", 3).value
        assert before == after

    def test_remove_io(self):
        outcome = self._apply("remove_io",
                              'int f() { printf("x"); return 1; }')
        assert outcome.applied
        assert "printf" not in program_str(outcome.program)

    def test_while_to_bounded_preserves_semantics(self):
        src = """
int f(int a) {
    int i = 0;
    while (i < a) { i += 2; }
    return i;
}"""
        outcome = self._apply("while_to_bounded_for", src)
        assert outcome.applied
        assert "while" not in program_str(outcome.program)
        for value in (0, 5, 10):
            assert Machine(cparse(src)).call("f", value).value \
                == Machine(outcome.program).call("f", value).value
        # And the rewritten loop is statically bounded.
        assert "HLS003" not in {i.code for i in
                                check_compatibility(outcome.program).issues}

    def test_tail_recursion_to_loop(self):
        src = """
int f(int a, int b) {
    if (b == 0) { return a; }
    return f(b, a % b);
}"""
        outcome = self._apply("tail_recursion_to_loop", src)
        assert outcome.applied
        assert Machine(outcome.program).call("f", 48, 18).value == 6
        assert "HLS002" not in {i.code for i in
                                check_compatibility(outcome.program).issues}

    def test_non_tail_recursion_rejected(self):
        src = "int f(int n) { if (n <= 1) { return 1; } return n * f(n - 1); }"
        outcome = self._apply("tail_recursion_to_loop", src)
        assert not outcome.applied

    def test_bound_pointer_param(self):
        outcome = self._apply("bound_pointer_param",
                              "int f(int *p) { return p[0]; }")
        assert outcome.applied
        func = outcome.program.function("f")
        assert func.params[0].ctype.array_size == 64

    def test_bound_pointer_respects_depth_pragma(self):
        src = """
#pragma HLS interface depth=128
int f(int *p) { return p[0]; }
"""
        outcome = self._apply("bound_pointer_param", src)
        assert outcome.program.function("f").params[0].ctype.array_size == 128

    def test_allow_divider_adds_pragma(self):
        outcome = self._apply("allow_divider",
                              "int f(int a, int b) { return a / b; }")
        assert outcome.applied
        assert any("sdiv" in p for p in outcome.program.function("f").pragmas)

    def test_pointer_arith_rewrite(self):
        src = "int f(int p[8], int i) { return *(p + i); }"
        outcome = self._apply("pointer_arith_to_index", src)
        assert outcome.applied
        assert "*(" not in program_str(outcome.program)
        assert Machine(outcome.program).call("f", [5, 6, 7, 8, 0, 0, 0, 0],
                                             2).value == 7

    def test_not_applicable_reports_false(self):
        outcome = self._apply("remove_io", "int f() { return 1; }")
        assert not outcome.applied
