"""Tests for the EDA tool-documentation QA flow."""

from repro.llm import Document, DocQa, EVAL_QUESTIONS, retrieval_accuracy


class TestDocQa:
    def test_retrieval_accuracy_top1(self):
        assert retrieval_accuracy(top_k=1) >= 0.6

    def test_retrieval_accuracy_top3(self):
        assert retrieval_accuracy(top_k=3) >= 0.8

    def test_top3_at_least_top1(self):
        assert retrieval_accuracy(top_k=3) >= retrieval_accuracy(top_k=1)

    def test_answer_cites_sources(self):
        qa = DocQa()
        answer = qa.ask("replace malloc heap allocation with a static buffer")
        assert answer.sources
        assert answer.best_source_id == "hls.001"
        assert "malloc" in answer.text or "static" in answer.text

    def test_see_also_links(self):
        qa = DocQa()
        answer = qa.ask("blocking vs non-blocking assignments", top_k=3)
        if len(answer.sources) > 1:
            assert "see also" in answer.text

    def test_no_match_degrades_gracefully(self):
        qa = DocQa()
        answer = qa.ask("zzqx qqqz", top_k=2)
        assert answer.text  # either a passage or the fallback message

    def test_extra_documents_are_searchable(self):
        qa = DocQa(extra_docs=[Document(
            "custom.flow", "the frobnicator pass reorders netlist frobs "
            "for timing closure")])
        answer = qa.ask("what does the frobnicator pass do")
        assert answer.best_source_id == "custom.flow"

    def test_eval_set_is_well_formed(self):
        qa = DocQa()
        known = {doc.doc_id for doc in qa.index.documents}
        for _, expected in EVAL_QUESTIONS:
            assert expected in known
