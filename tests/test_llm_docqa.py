"""Tests for the EDA tool-documentation QA flow."""

from repro.llm import (Document, DocQa, EVAL_QUESTIONS,
                       answer_faithfulness, retrieval_accuracy)


class TestDocQa:
    def test_retrieval_accuracy_top1(self):
        assert retrieval_accuracy(top_k=1) >= 0.6

    def test_retrieval_accuracy_top3(self):
        assert retrieval_accuracy(top_k=3) >= 0.8

    def test_top3_at_least_top1(self):
        assert retrieval_accuracy(top_k=3) >= retrieval_accuracy(top_k=1)

    def test_answer_cites_sources(self):
        qa = DocQa()
        answer = qa.ask("replace malloc heap allocation with a static buffer")
        assert answer.sources
        assert answer.best_source_id == "hls.001"
        assert "malloc" in answer.text or "static" in answer.text

    def test_see_also_links(self):
        qa = DocQa()
        answer = qa.ask("blocking vs non-blocking assignments", top_k=3)
        if len(answer.sources) > 1:
            assert "see also" in answer.text

    def test_no_match_degrades_gracefully(self):
        qa = DocQa()
        answer = qa.ask("zzqx qqqz", top_k=2)
        assert answer.text  # either a passage or the fallback message

    def test_extra_documents_are_searchable(self):
        qa = DocQa(extra_docs=[Document(
            "custom.flow", "the frobnicator pass reorders netlist frobs "
            "for timing closure")])
        answer = qa.ask("what does the frobnicator pass do")
        assert answer.best_source_id == "custom.flow"

    def test_eval_set_is_well_formed(self):
        qa = DocQa()
        known = {doc.doc_id for doc in qa.index.documents}
        for _, expected in EVAL_QUESTIONS:
            assert expected in known


class TestModelSynthesizedAnswers:
    """The LLM-backed answer path: resolve_client seam + stable seeding."""

    def test_deterministic_across_instances(self):
        question = "can I use malloc in a kernel for synthesis"
        first = DocQa(model="gpt-4o", seed=0).ask(question)
        second = DocQa(model="gpt-4o", seed=0).ask(question)
        assert first.text == second.text
        assert first.grounded == second.grounded

    def test_service_mode_is_byte_identical(self, monkeypatch):
        question = "my while loop fails HLS with no trip count"
        monkeypatch.delenv("REPRO_SERVICE", raising=False)
        direct = DocQa(model="gpt-4", seed=1).ask(question)
        monkeypatch.setenv("REPRO_SERVICE", "1")
        brokered = DocQa(model="gpt-4", seed=1).ask(question)
        assert brokered.text == direct.text
        assert brokered.grounded == direct.grounded

    def test_answer_carries_model_and_citation(self):
        answer = DocQa(model="gpt-4o", seed=0).ask(
            "what does latch inferred mean in a combinational block")
        assert answer.model == "gpt-4o"
        assert f"[source: {answer.best_source_id}]" in answer.text

    def test_extractive_path_unchanged_without_model(self):
        answer = DocQa().ask("what does latch inferred mean")
        assert answer.model == ""
        assert answer.grounded
        assert "[source:" not in answer.text

    def test_faithfulness_bounded_by_retrieval(self):
        ceiling = retrieval_accuracy(top_k=1)
        for model in ("gpt-4", "dave-gpt2"):
            score = answer_faithfulness(model, seed=0)
            assert 0.0 <= score <= ceiling

    def test_faithfulness_separates_model_strength(self):
        assert answer_faithfulness("gpt-4", seed=0) \
            > answer_faithfulness("dave-gpt2", seed=0)
