"""Broker, client-seam, and chaos tests for ``repro.service``."""

import threading

import pytest

from repro.bench.problems import get_problem
from repro.llm.model import SimulatedLLM
from repro.obs import get_metrics
from repro.service import (BackendError, BrokerConfig, CircuitBreaker,
                           CircuitOpenError, FlakyBackend, LLMClient,
                           LoadShedError, ModelBroker, RequestTimeout,
                           ServiceClient, TransientBackendError,
                           get_default_broker, reset_default_broker,
                           resolve_client)


def make_task(problem_id="c2_gray"):
    from repro.bench.harness import make_task as mk
    return mk(get_problem(problem_id))


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class StubProfile:
    name = "stub-model"


class StubBackend:
    """Minimal broker backend with controllable blocking."""

    profile = StubProfile()

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()
        self.calls = []

    def work(self, value):
        self.calls.append(value)
        return value * 2

    def blocking_work(self, value):
        self.started.set()
        assert self.release.wait(timeout=5.0)
        return value


class TestCircuitBreaker:
    def test_opens_at_threshold_and_half_opens_on_schedule(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, reset_s=0.25, clock=clock)
        assert breaker.state == CircuitBreaker.CLOSED
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        clock.advance(0.25)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        # The half-open breaker admits exactly one probe; a second
        # concurrent submitter sees OPEN again until the probe resolves.
        assert breaker.allow()
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, reset_s=0.5, clock=clock)
        breaker.record_failure()
        clock.advance(0.5)
        assert breaker.allow()          # the probe
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()


class TestBrokerMechanics:
    def test_call_routes_to_backend(self):
        backend = StubBackend()
        with ModelBroker(BrokerConfig(request_timeout_s=None)) as broker:
            assert broker.call(backend, "work", (21,)) == 42
            assert broker.lane_names() == ["stub-model"]

    def test_load_shedding_on_full_queue(self):
        backend = StubBackend()
        cfg = BrokerConfig(queue_capacity=1, max_batch=1,
                           request_timeout_s=None)
        with ModelBroker(cfg) as broker:
            first = broker.submit(backend, "blocking_work", (1,))
            assert backend.started.wait(timeout=5.0)
            # Worker is blocked inside request 1; the next submission fills
            # the 1-slot queue and the one after that is shed.
            second = broker.submit(backend, "work", (2,))
            with pytest.raises(LoadShedError):
                broker.submit(backend, "work", (3,))
            backend.release.set()
            assert first.result(timeout=5.0) == 1
            assert second.result(timeout=5.0) == 4
        assert get_metrics().snapshot()["counters"]["service.shed"] >= 1

    def test_queued_request_past_deadline_times_out(self):
        clock = FakeClock()
        backend = StubBackend()
        cfg = BrokerConfig(max_batch=1, request_timeout_s=None)
        broker = ModelBroker(cfg, clock=clock)
        try:
            first = broker.submit(backend, "blocking_work", (1,))
            assert backend.started.wait(timeout=5.0)
            doomed = broker.submit(backend, "work", (2,), timeout=0.5)
            clock.advance(1.0)
            backend.release.set()
            assert first.result(timeout=5.0) == 1
            with pytest.raises(RequestTimeout):
                doomed.result(timeout=5.0)
        finally:
            backend.release.set()
            broker.shutdown()

    def test_breaker_opens_then_recovers_through_half_open(self):
        clock = FakeClock()
        llm = SimulatedLLM("gpt-4", seed=0)
        backend = FlakyBackend(llm, fail_first=2, seed=1)
        cfg = BrokerConfig(breaker_threshold=2, breaker_reset_s=0.25,
                           max_retries=0, request_timeout_s=None)
        broker = ModelBroker(cfg, clock=clock)
        try:
            task = make_task()
            for i in range(2):
                future = broker.submit(backend, "generate", (task,),
                                       {"sample_index": i})
                with pytest.raises(BackendError):
                    future.result(timeout=5.0)
            breaker = broker.breaker("gpt-4")
            assert breaker.state == CircuitBreaker.OPEN
            with pytest.raises(CircuitOpenError):
                broker.submit(backend, "generate", (task,))
            clock.advance(0.25)
            assert breaker.state == CircuitBreaker.HALF_OPEN
            # The half-open probe succeeds (fail_first budget spent) and
            # closes the breaker again.
            probe = broker.submit(backend, "generate", (task,),
                                  {"sample_index": 2})
            probe.result(timeout=5.0)
            assert breaker.state == CircuitBreaker.CLOSED
        finally:
            broker.shutdown()

    def test_transient_faults_are_retried_to_success(self):
        task = make_task()
        backend = FlakyBackend(SimulatedLLM("gpt-4", seed=3),
                               transient_rate=0.6, seed=5,
                               sleeper=lambda _dt: None)
        cfg = BrokerConfig(max_retries=50, backoff_base_s=0.0,
                           backoff_cap_s=0.0, request_timeout_s=None)
        before = get_metrics().snapshot()["counters"].get("service.retries", 0)
        with ModelBroker(cfg) as broker:
            client = ServiceClient(backend, broker=broker)
            generations = [client.generate(task, sample_index=i)
                           for i in range(4)]
        direct = SimulatedLLM("gpt-4", seed=3)
        assert generations == [direct.generate(task, sample_index=i)
                               for i in range(4)]
        after = get_metrics().snapshot()["counters"]["service.retries"]
        assert after > before

    def test_metrics_instrumented(self):
        backend = StubBackend()
        with ModelBroker(BrokerConfig(request_timeout_s=None)) as broker:
            for i in range(4):
                broker.call(backend, "work", (i,))
        snap = get_metrics().snapshot()
        assert snap["counters"]["service.requests"] >= 4
        assert "service.batch_size.stub-model" in snap["histograms"]
        assert "service.queue_depth.stub-model" in snap["gauges"]


class TestBrokerRaceRegressions:
    """Regression coverage for the four latent concurrency bugs fixed in
    the sharding PR (shed-consumes-probe, shutdown-vs-submit, deadline
    ignored across retries, dropped config knobs)."""

    def test_shed_does_not_consume_half_open_probe(self):
        # A shed submission must not spend (and re-arm) the half-open
        # probe: previously breaker.allow() ran before the capacity check,
        # so under sustained overload a lane's breaker stayed open forever.
        clock = FakeClock()
        backend = StubBackend()
        cfg = BrokerConfig(queue_capacity=1, max_batch=1,
                           breaker_threshold=1, breaker_reset_s=0.25,
                           request_timeout_s=None)
        broker = ModelBroker(cfg, clock=clock)
        try:
            blocker = broker.submit(backend, "blocking_work", (1,))
            assert backend.started.wait(timeout=5.0)
            filler = broker.submit(backend, "work", (2,))
            breaker = broker.breaker("stub-model")
            breaker.record_failure()                 # trip it (threshold 1)
            assert breaker.state == CircuitBreaker.OPEN
            clock.advance(0.25)
            assert breaker.state == CircuitBreaker.HALF_OPEN
            # Queue is full: the submission sheds and the probe survives.
            with pytest.raises(LoadShedError):
                broker.submit(backend, "work", (3,))
            assert breaker.state == CircuitBreaker.HALF_OPEN
            # With capacity back, a submission may spend the probe.  (The
            # drained filler's success closes the breaker, so re-trip it
            # to walk the probe path with room in the queue this time.)
            backend.release.set()
            assert blocker.result(timeout=5.0) == 1
            assert filler.result(timeout=5.0) == 4
            breaker.record_failure()
            clock.advance(0.25)
            assert breaker.state == CircuitBreaker.HALF_OPEN
            probe = broker.submit(backend, "work", (4,))
            assert probe.result(timeout=5.0) == 8
            assert breaker.state == CircuitBreaker.CLOSED
        finally:
            backend.release.set()
            broker.shutdown()

    def test_submit_racing_shutdown_never_strands_a_future(self):
        # Hammer submit from one thread while shutting down from another:
        # every submission must either resolve or raise ServiceError at
        # submit time — no future may be left forever pending.
        from repro.service import ServiceError
        for round_no in range(5):
            backend = StubBackend()
            broker = ModelBroker(BrokerConfig(request_timeout_s=None))
            futures = []
            barrier = threading.Barrier(2)

            def submitter():
                barrier.wait()
                for i in range(200):
                    try:
                        futures.append(broker.submit(backend, "work", (i,)))
                    except ServiceError:
                        return

            thread = threading.Thread(target=submitter)
            thread.start()
            barrier.wait()
            broker.shutdown()
            thread.join(timeout=5.0)
            assert not thread.is_alive()
            for future in futures:
                # Admitted before the stop flag → drained by the worker.
                assert future.result(timeout=5.0) is not None

    def test_shutdown_fails_leftover_queued_futures(self):
        # A wedged worker can't drain its queue; shutdown must fail the
        # still-queued requests instead of leaving them pending forever.
        from repro.service import ServiceError
        backend = StubBackend()
        cfg = BrokerConfig(max_batch=1, queue_capacity=16,
                           request_timeout_s=None)
        broker = ModelBroker(cfg)
        wedged = broker.submit(backend, "blocking_work", (1,))
        assert backend.started.wait(timeout=5.0)
        queued = [broker.submit(backend, "work", (i,)) for i in range(4)]
        broker.shutdown(join_s=0.05)        # worker is stuck: join times out
        for future in queued:
            with pytest.raises(ServiceError, match="not drained"):
                future.result(timeout=5.0)
        snap = get_metrics().snapshot()["counters"]
        assert snap.get("service.failed_on_shutdown", 0) >= 4
        # The in-flight request still belongs to its worker.
        backend.release.set()
        assert wedged.result(timeout=5.0) == 1

    def test_deadline_rechecked_before_each_retry(self):
        # A transiently-failing request must stop retrying once its
        # deadline passes instead of burning the whole backoff schedule.
        clock = FakeClock()

        class AlwaysTransient:
            profile = StubProfile()
            calls = 0

            def work(self, value):
                AlwaysTransient.calls += 1
                raise TransientBackendError("flaky forever")

        cfg = BrokerConfig(max_retries=100, backoff_base_s=1.0,
                           backoff_cap_s=1.0, request_timeout_s=None)
        broker = ModelBroker(cfg, clock=clock, sleeper=clock.advance)
        try:
            future = broker.submit(AlwaysTransient(), "work", (1,),
                                   timeout=2.0)
            with pytest.raises(RequestTimeout, match="attempt"):
                future.result(timeout=5.0)
        finally:
            broker.shutdown()
        # Backoff sleeps advance the fake clock ~0.5-1.5 s each, so the
        # 2 s deadline cuts the 100-retry schedule to a handful of calls.
        assert AlwaysTransient.calls <= 5


class TestClientSeam:
    def test_resolve_string_returns_simulated_llm(self):
        client = resolve_client("gpt-4", seed=7, service=False)
        assert isinstance(client, SimulatedLLM)
        assert client.seed == 7
        assert isinstance(client, LLMClient)   # structural conformance

    def test_resolve_instance_passthrough(self):
        llm = SimulatedLLM("gpt-4", seed=3)
        assert resolve_client(llm, seed=999, service=False) is llm

    def test_resolve_service_wraps_once(self):
        with ModelBroker(BrokerConfig(request_timeout_s=None)) as broker:
            client = resolve_client("gpt-4", seed=1, service=True,
                                    broker=broker)
            assert isinstance(client, ServiceClient)
            again = resolve_client(client, service=True, broker=broker)
            assert again is client                # never double-wrapped
            assert isinstance(client, LLMClient)

    def test_resolve_reads_env_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE", "1")
        reset_default_broker()
        try:
            client = resolve_client("gpt-4", seed=0)
            assert isinstance(client, ServiceClient)
        finally:
            reset_default_broker()
        monkeypatch.setenv("REPRO_SERVICE", "off")
        assert isinstance(resolve_client("gpt-4", seed=0), SimulatedLLM)

    def test_brokered_calls_byte_identical_to_direct(self):
        task = make_task("c2_absdiff")
        direct = SimulatedLLM("gpt-4", seed=11)
        backend = SimulatedLLM("gpt-4", seed=11)
        with ModelBroker(BrokerConfig(request_timeout_s=None)) as broker:
            client = ServiceClient(backend, broker=broker)
            for i in range(3):
                assert client.generate(task, sample_index=i) \
                    == direct.generate(task, sample_index=i)
            d_gen = direct.generate(task, sample_index=9)
            b_gen = client.generate(task, sample_index=9)
            assert client.refine(task, b_gen, "FAIL: 1 of 4", 0.8, 1) \
                == direct.refine(task, d_gen, "FAIL: 1 of 4", 0.8, 1)
            assert client.apply_human_fix(task, b_gen) \
                == direct.apply_human_fix(task, d_gen)
        assert backend.usage == direct.usage

    def test_derive_and_chat_stay_brokered(self):
        with ModelBroker(BrokerConfig(request_timeout_s=None)) as broker:
            client = ServiceClient(SimulatedLLM("gpt-4", seed=0),
                                   broker=broker)
            derived = client.derive(5)
            assert isinstance(derived, ServiceClient)
            assert derived.broker is broker
            assert derived.seed == 5
            session = client.chat(system="hi")
            assert session.llm is client

    def test_default_broker_recreated_after_reset(self):
        reset_default_broker()
        first = get_default_broker()
        assert get_default_broker() is first
        reset_default_broker()
        second = get_default_broker()
        assert second is not first
        assert not second.stopped
        reset_default_broker()


class TestServiceDeterminism:
    """REPRO_SERVICE=1 must run byte-identical to the direct path."""

    @pytest.mark.slow
    def test_flow_suite_identical_with_service_enabled(self, monkeypatch):
        from repro.flows import run_structured_sweep, vrank
        problems = [get_problem("c2_gray"), get_problem("c2_absdiff")]

        def run_suite():
            sweep = run_structured_sweep("gpt-4", problems, seeds=(0, 1))
            ranked = vrank(problems[0], "chatgpt-3.5", n_candidates=4,
                           seed=2)
            return sweep, ranked

        monkeypatch.setenv("REPRO_SERVICE", "0")
        direct = run_suite()
        monkeypatch.setenv("REPRO_SERVICE", "1")
        reset_default_broker()
        try:
            brokered = run_suite()
        finally:
            reset_default_broker()
        assert direct == brokered

    @pytest.mark.slow
    def test_agent_identical_with_service_enabled(self, monkeypatch):
        from repro.core.agent import AgentConfig, EdaAgent
        problem = get_problem("c2_adder8")

        def run_agent():
            agent = EdaAgent(AgentConfig(model="chatgpt-3.5"), seed=4)
            return agent.run(problem)

        monkeypatch.setenv("REPRO_SERVICE", "0")
        direct = run_agent()
        monkeypatch.setenv("REPRO_SERVICE", "1")
        reset_default_broker()
        try:
            brokered = run_agent()
        finally:
            reset_default_broker()
        assert direct == brokered


class TestChaos:
    """Seeded fault injection: the broker converges through 30% faults."""

    @pytest.mark.slow
    def test_structured_flow_converges_through_30pct_transient_faults(self):
        from repro.flows.structured import StructuredFeedbackFlow
        problems = [get_problem("c2_gray"), get_problem("c2_adder8")]
        cfg = BrokerConfig(max_retries=8, backoff_base_s=0.0,
                           backoff_cap_s=0.0, request_timeout_s=None)

        def run(client):
            return [StructuredFeedbackFlow(client).run(p, seed=s)
                    for s in (0, 1) for p in problems]

        direct = run(SimulatedLLM("gpt-4", seed=6))
        flaky = FlakyBackend(SimulatedLLM("gpt-4", seed=6),
                             transient_rate=0.30, seed=42,
                             sleeper=lambda _dt: None)
        with ModelBroker(cfg) as broker:
            chaos = run(ServiceClient(flaky, broker=broker))
        assert chaos == direct
        assert flaky.faults_injected > 0

    @pytest.mark.slow
    def test_chaos_run_replays_byte_identically(self):
        llm_a = SimulatedLLM("gpt-4", seed=2)
        llm_b = SimulatedLLM("gpt-4", seed=2)
        cfg = BrokerConfig(max_retries=8, backoff_base_s=0.0,
                           backoff_cap_s=0.0, request_timeout_s=None)
        task = make_task("c2_absdiff")

        def run(llm):
            flaky = FlakyBackend(llm, transient_rate=0.30, seed=7,
                                 sleeper=lambda _dt: None)
            with ModelBroker(cfg) as broker:
                client = ServiceClient(flaky, broker=broker)
                out = [client.generate(task, sample_index=i)
                       for i in range(6)]
            return out, flaky.faults_injected

        # Identical inputs → identical outputs *and* fault schedule.
        out_a, faults_a = run(llm_a)
        out_b, faults_b = run(llm_b)
        assert out_a == out_b
        assert faults_a == faults_b
        assert faults_a > 0
