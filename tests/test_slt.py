"""Tests for the SLT optimization loop, pool, temperature, and GP baseline."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.llm import SimulatedLLM
from repro.riscv import FpgaPowerMeter
from repro.slt import (Candidate, CandidatePool, GeneticProgramming, GpConfig,
                       HANDWRITTEN_SEEDS, RANGES, SltConfig, SltOptimizer,
                       SltSnippetGenerator, SnippetGenome, StopCondition,
                       TemperatureController, crossover, mutate_genome,
                       random_genome, run_gp_slt, run_llm_slt)
from repro.hls import cparse
from repro.riscv import assemble, compile_program, run_program


class TestGenomes:
    def test_render_compiles_and_runs(self):
        for genome in HANDWRITTEN_SEEDS:
            src = genome.render()
            stats = run_program(assemble(compile_program(src)))
            assert stats.halted

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_genomes_render_valid_c(self, seed):
        genome = random_genome(random.Random(seed), realistic=True)
        cparse(genome.render())  # must parse

    def test_clamp_respects_ranges(self):
        wild = SnippetGenome(n_accs=99, loop_iters=1, unroll=50, mul_ops=9,
                             xor_ops=9, add_ops=9, mem_size=9999,
                             mem_stride=99, div_every=99, branch_every=99)
        clamped = wild.clamped(realistic=True)
        for name, (lo_hi, _) in RANGES.items():
            lo, hi = lo_hi
            assert lo <= getattr(clamped, name) <= hi

    def test_realistic_envelope_check(self):
        assert HANDWRITTEN_SEEDS[0].is_realistic()
        wild = SnippetGenome(unroll=8).clamped(realistic=False)
        assert not wild.is_realistic()

    def test_mutation_stays_in_envelope(self):
        rng = random.Random(1)
        genome = HANDWRITTEN_SEEDS[0]
        for _ in range(20):
            genome = mutate_genome(genome, rng, realistic=True)
        assert genome.clamped(realistic=True) == genome

    def test_crossover_mixes_fields(self):
        rng = random.Random(2)
        a = random_genome(rng)
        b = random_genome(rng)
        child = crossover(a, b, rng)
        for name in RANGES:
            assert getattr(child, name) in (getattr(a, name),
                                            getattr(b, name))


class TestPool:
    def _cand(self, genome_seed, power, sid):
        genome = random_genome(random.Random(genome_seed))
        return Candidate(genome.render(), genome, power, sid)

    def test_admits_until_capacity(self):
        pool = CandidatePool(capacity=3, min_distance=0)
        for i in range(3):
            assert pool.consider(self._cand(i * 17, 4.0 + i * 0.1, i))
        assert len(pool.entries) == 3

    def test_weak_candidate_rejected_at_capacity(self):
        pool = CandidatePool(capacity=2, min_distance=0)
        pool.consider(self._cand(1, 5.0, 1))
        pool.consider(self._cand(50, 5.5, 2))
        assert not pool.consider(self._cand(99, 4.0, 3))
        assert pool.rejected_weak == 1

    def test_better_candidate_replaces_worst(self):
        pool = CandidatePool(capacity=2, min_distance=0)
        pool.consider(self._cand(1, 5.0, 1))
        pool.consider(self._cand(50, 5.5, 2))
        assert pool.consider(self._cand(99, 6.0, 3))
        assert pool.worst.power_w >= 5.5

    def test_similar_candidate_rejected_unless_better(self):
        pool = CandidatePool(capacity=4, min_distance=5)
        genome = HANDWRITTEN_SEEDS[0]
        base = Candidate(genome.render(), genome, 5.0, 1)
        pool.consider(base)
        twin_weak = Candidate(genome.render(), genome, 4.5, 2)
        assert not pool.consider(twin_weak)
        assert pool.rejected_similar == 1
        twin_strong = Candidate(genome.render(), genome, 5.5, 3)
        assert pool.consider(twin_strong)
        assert len(pool.entries) == 1
        assert pool.best.power_w == 5.5

    def test_sample_examples(self):
        pool = CandidatePool(capacity=8, min_distance=0)
        for i in range(5):
            pool.consider(self._cand(i * 31, 4.0 + i * 0.01, i))
        sampled = pool.sample_examples(3, random.Random(0))
        assert len(sampled) == 3

    def test_diversity_metric(self):
        pool = CandidatePool(capacity=8, min_distance=0)
        pool.consider(self._cand(1, 5.0, 1))
        pool.consider(self._cand(500, 5.1, 2))
        assert pool.mean_pairwise_distance() > 0


class TestTemperature:
    def test_good_novel_snippet_cools(self):
        tc = TemperatureController(initial=0.7)
        t = tc.update(score=5.0, best_score=5.0, distance_to_pool=50,
                      min_distance=8)
        assert t < 0.7

    def test_failure_heats(self):
        tc = TemperatureController(initial=0.7)
        t = tc.update(score=0.0, best_score=5.0, distance_to_pool=50,
                      min_distance=8)
        assert t > 0.7

    def test_me_too_snippet_heats(self):
        tc = TemperatureController(initial=0.7)
        t = tc.update(score=5.0, best_score=5.0, distance_to_pool=2,
                      min_distance=8)
        assert t > 0.7

    def test_bounds_respected(self):
        tc = TemperatureController(initial=0.25, minimum=0.2, maximum=1.3)
        for _ in range(50):
            tc.update(5.0, 5.0, 50, 8)
        assert tc.temperature >= 0.2
        tc2 = TemperatureController(initial=1.2, minimum=0.2, maximum=1.3)
        for _ in range(50):
            tc2.update(0.0, 5.0, 50, 8)
        assert tc2.temperature <= 1.3

    def test_stagnation_restart_heats(self):
        tc = TemperatureController(initial=0.5)
        for _ in range(26):
            tc.update(3.0, 5.0, 50, 8)   # novel but mediocre
        assert tc.temperature > 0.2
        assert len(tc.history) == 27


class TestStopConditions:
    def test_time_budget(self):
        stop = StopCondition(max_hours=1.0)
        assert stop.should_stop(1.2, 10, 0) is not None
        assert stop.should_stop(0.5, 10, 0) is None

    def test_snippet_budget(self):
        stop = StopCondition(max_snippets=100)
        assert stop.should_stop(0.1, 100, 0) is not None

    def test_manual(self):
        assert StopCondition(manual_stop=True).should_stop(0, 0, 0) \
            == "manual stop"

    def test_plateau(self):
        stop = StopCondition(plateau_snippets=50)
        assert stop.should_stop(0.1, 200, 50) is not None
        assert stop.should_stop(0.1, 200, 49) is None


class TestGeneratorAndLoop:
    def test_generator_deterministic(self):
        gen_a = SltSnippetGenerator(SimulatedLLM("gpt-4", seed=3), seed=3)
        gen_b = SltSnippetGenerator(SimulatedLLM("gpt-4", seed=3), seed=3)
        a = gen_a.generate([], 0.7, 5)
        b = gen_b.generate([], 0.7, 5)
        assert a.source == b.source

    def test_scot_produces_pseudocode(self):
        gen = SltSnippetGenerator(SimulatedLLM("gpt-4", seed=1),
                                  use_scot=True, seed=1)
        out = gen.generate([], 0.7, 1)
        assert out.pseudocode.startswith("PLAN:")

    def test_scot_reduces_compile_failures(self):
        def failure_rate(use_scot):
            gen = SltSnippetGenerator(
                SimulatedLLM("codellama-34b-instruct", seed=2),
                use_scot=use_scot, seed=2)
            fails = 0
            for i in range(60):
                if not gen.generate([], 0.9, i).compiles_intent:
                    fails += 1
            return fails

        assert failure_rate(True) < failure_rate(False)

    def test_low_temperature_anchors_on_best_example(self):
        llm = SimulatedLLM("codellama-34b-instruct-ft", seed=4)
        gen = SltSnippetGenerator(llm, seed=4)
        examples = []
        for i, genome in enumerate(HANDWRITTEN_SEEDS[:3]):
            examples.append(Candidate(genome.render(), genome,
                                      4.0 + i * 0.3, i))
        anchored = 0
        for i in range(30):
            out = gen.generate(examples, temperature=0.2, sample_index=i)
            if out.anchored_on is not None:
                anchored += 1
        assert anchored > 15

    @pytest.mark.slow
    def test_short_llm_run_improves_over_seeds(self):
        meter = FpgaPowerMeter(seed=11)
        optimizer = SltOptimizer(SimulatedLLM("codellama-34b-instruct-ft",
                                              seed=11),
                                 meter, SltConfig(), seed=11)
        result = optimizer.run(StopCondition(max_snippets=25))
        assert result.snippets_generated == 25
        assert result.best_power_w > 0
        seed_best = max(
            FpgaPowerMeter(seed=11).measure_c(g.render()).watts
            for g in HANDWRITTEN_SEEDS)
        assert result.best_power_w >= seed_best * 0.98

    @pytest.mark.slow
    def test_events_record_monotone_best(self):
        result = run_llm_slt(hours=0.3, seed=3)
        bests = [e.best_w for e in result.events]
        assert all(b2 >= b1 for b1, b2 in zip(bests, bests[1:]))

    @pytest.mark.slow
    def test_gp_runs_and_improves(self):
        result = run_gp_slt(hours=0.4, seed=3)
        assert result.snippets_generated > 10
        assert result.best_power_w > 4.0

    @pytest.mark.slow
    def test_gp_realistic_only_constrains(self):
        result = run_gp_slt(hours=0.3, seed=5, realistic_only=True)
        assert result.best_power_w > 0

    def test_stop_reason_propagates(self):
        result = run_llm_slt(hours=0.1, seed=1)
        assert "time budget" in result.stop_reason
