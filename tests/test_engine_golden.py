"""Engine byte-identity: every flow vs. pre-refactor golden records.

The fixtures under ``tests/golden/`` were captured from the serial,
pre-engine loops (before the ``repro.engine`` refactor landed) at fixed
seeds.  Each scenario runs a full flow through its public entry point and
serializes the *public result dataclass* to plain JSON; the tests then
assert that the engine-based implementations reproduce those records
byte-for-byte in every execution mode:

* ``REPRO_SERVICE=0`` — direct in-process client;
* ``REPRO_SERVICE=1`` — every model call rides the broker's micro-batch
  lanes;
* ``REPRO_SERVICE=1`` + ``REPRO_GEN_CONCURRENCY=8`` — candidate
  generation submitted concurrently so lanes coalesce real batches.

Regenerate (only when a behaviour change is intended and reviewed)::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_engine_golden.py -q
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib

import pytest

from repro.bench.problems import get_problem

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN", "") == "1"


def _plain(value):
    """Recursively convert a flow result into JSON-plain data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _plain(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, float):
        return round(value, 9)
    return value


# -- scenario runners ---------------------------------------------------------
# One per registered flow plus the agent pipeline, the SLT loop and the HLS
# repair loop (the non-flow loops the engine also hosts).  Parameters are
# fixed and small; every runner returns JSON-plain data.

def _autochip():
    from repro.flows.autochip import run_autochip
    result = run_autochip(get_problem("c3_alu"), "chatgpt-3.5",
                          k=3, depth=2, seed=1)
    return _plain(result)


def _structured():
    from repro.flows.structured import run_structured_sweep
    sweep = run_structured_sweep(
        "gpt-4", [get_problem("c2_gray"), get_problem("c2_absdiff")],
        seeds=(0,))
    return _plain(sweep.results)


def _vrank():
    from repro.flows.vrank import vrank
    result = vrank(get_problem("c2_gray"), "chatgpt-3.5",
                   n_candidates=4, seed=2)
    return _plain(result)


def _chipchat():
    from repro.flows.chipchat import run_chipchat_tapeout
    report = run_chipchat_tapeout([get_problem("c2_adder8")], "chatgpt-3.5",
                                  seed=0)
    return _plain(report.results)


def _crosscheck():
    from repro.flows.crosscheck import guided_debug_sweep
    sweep = guided_debug_sweep([get_problem("c3_alu")], "chatgpt-3.5",
                               seeds=(0, 1))
    return _plain(sweep.results)


def _hierarchical():
    from repro.flows.hierarchical import hierarchical_sweep
    sweep = hierarchical_sweep([get_problem("c2_gray")], "cl-verilog-34b",
                               seeds=(0, 1))
    return _plain(sweep.results)


def _assertgen():
    from repro.flows.assertgen import assertion_sweep
    sweep = assertion_sweep([get_problem("c2_gray")], "gpt-4", seeds=(0,))
    return _plain(sweep.results)


def _autobench():
    from repro.flows.autobench import testbench_quality
    reports = [testbench_quality(get_problem("c2_gray"), "chatgpt-3.5",
                                 seed=0, self_correct=sc)
               for sc in (False, True)]
    return _plain(reports)


def _security():
    from repro.flows.security import detection_sweep
    return _plain(detection_sweep(
        [get_problem("c2_gray"), get_problem("c2_absdiff")], seeds=(0,)))


def _agent():
    from repro.core.agent import AgentConfig, EdaAgent
    report = EdaAgent(AgentConfig(model="chatgpt-3.5"), seed=4).run(
        get_problem("c2_adder8"))
    return {
        "problem_id": report.problem_id,
        "model": report.model,
        "success": report.success,
        "reopens": report.reopens,
        "total_tokens": report.total_tokens,
        "stage_table": _plain(report.stage_table()),
        "summary": report.summary(),
    }


def _slt():
    from repro.slt.loop import run_llm_slt
    result = run_llm_slt(hours=0.2, seed=3)
    return {
        "best_power_w": round(result.best_power_w, 9),
        "snippets_generated": result.snippets_generated,
        "elapsed_hours": round(result.elapsed_hours, 9),
        "stop_reason": result.stop_reason,
        "compile_failures": result.compile_failures,
        "events": _plain(result.events),
        "best_source": result.best_source,
    }


def _hls_repair():
    from repro.bench.workloads import repair_workload
    from repro.hls import repair_source
    w = repair_workload("malloc_sum")
    result = repair_source(w.source, w.top, model="gpt-4", seed=1)
    return {
        "success": result.success,
        "rounds": result.rounds,
        "issues_found": [str(i) for i in result.issues_found],
        "issues_fixed": result.issues_fixed,
        "issues_remaining": result.issues_remaining,
        "latent_missed": result.latent_missed,
        "repaired_source": result.repaired_source,
    }


def _compare_budgets():
    from repro.flows.autochip import compare_budgets
    comparison = compare_budgets(
        "chatgpt-3.5", [get_problem("c2_gray"), get_problem("c2_absdiff")],
        budget=3, seeds=(0, 1))
    return _plain(comparison)


SCENARIOS = {
    "autochip": _autochip,
    "structured": _structured,
    "vrank": _vrank,
    "chipchat": _chipchat,
    "crosscheck": _crosscheck,
    "hierarchical": _hierarchical,
    "assertgen": _assertgen,
    "autobench": _autobench,
    "security": _security,
    "agent": _agent,
    "slt": _slt,
    "hls_repair": _hls_repair,
    "compare_budgets": _compare_budgets,
}

# Scenarios whose loops never touch a model client: the service/concurrency
# modes would be identical by construction, so they only run directly.
_MODELLESS = {"security", "slt", "hls_repair"}


def _fixture_path(name: str) -> pathlib.Path:
    return GOLDEN_DIR / f"{name}.json"


def _run_mode(name: str, mode: str, monkeypatch):
    from repro.service import reset_default_broker
    if mode == "direct":
        monkeypatch.setenv("REPRO_SERVICE", "0")
        return SCENARIOS[name]()
    monkeypatch.setenv("REPRO_SERVICE", "1")
    if mode == "service":
        monkeypatch.setenv("REPRO_GEN_CONCURRENCY", "1")
    elif mode == "sharded":
        # Consistent-hash router over 3 shards + concurrent generation:
        # must be byte-identical to every other path.
        monkeypatch.setenv("REPRO_SERVICE_SHARDS", "3")
        monkeypatch.setenv("REPRO_GEN_CONCURRENCY", "8")
    else:
        monkeypatch.setenv("REPRO_GEN_CONCURRENCY", "8")
    reset_default_broker()
    try:
        return SCENARIOS[name]()
    finally:
        reset_default_broker()


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_direct(name, monkeypatch):
    """Engine path == pre-refactor serial loop (direct client)."""
    path = _fixture_path(name)
    got = _run_mode(name, "direct", monkeypatch)
    if REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(got, indent=1, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"missing golden fixture {path}; regenerate with "
        f"REPRO_REGEN_GOLDEN=1 (only from a reviewed baseline)")
    want = json.loads(path.read_text())
    assert got == want


@pytest.mark.slow
@pytest.mark.parametrize("mode", ["service", "concurrent", "sharded"])
@pytest.mark.parametrize("name", sorted(set(SCENARIOS) - _MODELLESS))
def test_golden_brokered(name, mode, monkeypatch):
    """REPRO_SERVICE=1 (and concurrent generation) == the same records."""
    if REGEN:
        pytest.skip("fixtures regenerate from the direct path only")
    path = _fixture_path(name)
    assert path.exists()
    want = json.loads(path.read_text())
    got = _run_mode(name, mode, monkeypatch)
    assert got == want


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_critic_off_replay(name, monkeypatch):
    """Explicit ``REPRO_CRITIC=0`` replays every fixture byte-identical.

    This is the critic's byte-identity acceptance gate: with the knob
    off (explicitly, not just unset) ``resolve_critic`` returns ``None``
    and every flow must take exactly its pre-critic code path.
    """
    if REGEN:
        pytest.skip("fixtures regenerate from the direct path only")
    path = _fixture_path(name)
    assert path.exists()
    monkeypatch.setenv("REPRO_CRITIC", "0")
    want = json.loads(path.read_text())
    got = _run_mode(name, "direct", monkeypatch)
    assert got == want


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_planner_off_replay(name, monkeypatch):
    """Explicit ``REPRO_AGENT_PLANNER=0`` replays every fixture byte-identical.

    The planner's byte-identity acceptance gate: with the knob off
    (explicitly, not just unset) ``EdaAgent.run`` takes exactly the fixed
    ``DEFAULT_PIPELINE`` path and no other flow reads the knob at all.
    """
    if REGEN:
        pytest.skip("fixtures regenerate from the direct path only")
    path = _fixture_path(name)
    assert path.exists()
    monkeypatch.setenv("REPRO_AGENT_PLANNER", "0")
    want = json.loads(path.read_text())
    got = _run_mode(name, "direct", monkeypatch)
    assert got == want


def test_critic_annotates_without_changing_selection(monkeypatch):
    """All-accepted reviews: public result identical, record annotated.

    A strong model on an easy problem produces only rule-clean
    candidates, so the critic rejects nothing — selection, scores and
    the public result dataclass must match the critic-off run exactly,
    while the (non-serialized) run record carries the verdicts.
    """
    from repro.flows.autochip import run_autochip

    monkeypatch.setenv("REPRO_CRITIC", "0")
    off = run_autochip(get_problem("c1_mux2"), "gpt-4o", k=2, depth=1,
                       seed=0)
    monkeypatch.setenv("REPRO_CRITIC", "1")
    on = run_autochip(get_problem("c1_mux2"), "gpt-4o", k=2, depth=1,
                      seed=0)
    assert _plain(on) == _plain(off)
    assert on.run_record.critic_reviews == on.run_record.generations
    assert on.run_record.critic_rejections == 0
    assert on.run_record.critic_verdicts
    assert all(v["ok"] for entry in on.run_record.critic_verdicts
               for v in entry["verdicts"])
    assert off.run_record.critic_verdicts == []
