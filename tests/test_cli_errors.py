"""Error-path coverage for the repo's CLIs.

The happy paths are smoke-tested elsewhere; these tests pin down the
failure contracts — exit code 2 plus a stderr message, never a raw
traceback — for ``python -m repro.flows`` and ``python -m repro.obs.report``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.flows.__main__ import main as flows_main
from repro.fuzz.__main__ import main as fuzz_main
from repro.loadgen.__main__ import main as loadgen_main
from repro.obs.report import main as report_main
from repro.store import reset_default_store


@pytest.fixture(autouse=True)
def _no_ambient_store(monkeypatch):
    """CLI error tests must not be rescued by an ambient REPRO_STORE."""
    monkeypatch.delenv("REPRO_STORE", raising=False)
    monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
    reset_default_store()
    yield
    reset_default_store()


class TestFlowsCli:
    def test_unknown_flow_name(self, capsys):
        assert flows_main(["definitely-not-a-flow"]) == 2
        err = capsys.readouterr().err
        assert "unknown flow" in err
        assert "known flows" in err  # actionable: lists what exists

    def test_bad_seed_value(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            flows_main(["vrank", "--seed", "not-an-int"])
        assert excinfo.value.code == 2
        assert "--seed" in capsys.readouterr().err

    def test_unknown_problem_id(self, capsys):
        assert flows_main(["vrank", "--problems", "no_such_problem"]) == 2
        err = capsys.readouterr().err
        assert "unknown problem" in err
        assert "known" in err  # actionable: lists valid ids

    def test_list_exits_zero(self, capsys):
        assert flows_main(["--list"]) == 0
        assert "vrank" in capsys.readouterr().out

    def test_no_arguments_lists_flows(self, capsys):
        assert flows_main([]) == 0
        assert "vrank" in capsys.readouterr().out


class TestFlowsCliBudget:
    def test_nonpositive_budget_tokens(self, capsys):
        assert flows_main(["autochip", "--problems", "c2_gray",
                           "--budget-tokens", "0"]) == 2
        err = capsys.readouterr().err
        assert "invalid budget" in err
        assert "max_tokens" in err

    def test_negative_deadline(self, capsys):
        assert flows_main(["autochip", "--problems", "c2_gray",
                           "--deadline-s", "-1.5"]) == 2
        err = capsys.readouterr().err
        assert "invalid budget" in err
        assert "deadline_s" in err

    def test_non_integer_budget_evals(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            flows_main(["autochip", "--budget-evals", "three"])
        assert excinfo.value.code == 2
        assert "--budget-evals" in capsys.readouterr().err

    def test_budget_on_flow_without_support(self, capsys):
        assert flows_main(["vrank", "--problems", "c2_gray",
                           "--budget-tokens", "1000"]) == 2
        err = capsys.readouterr().err
        assert "does not support" in err

    def test_budget_truncates_autochip(self, capsys):
        # One eval allowed: the run stops after its first round.
        assert flows_main(["autochip", "--problems", "c2_gray",
                           "--model", "chatgpt-3.5",
                           "--budget-evals", "1"]) == 0
        out = capsys.readouterr().out
        assert "c2_gray" in out


class TestStoreFlagConventions:
    """``--store``/``--resume`` behave identically across the CLIs."""

    def test_flows_resume_without_store(self, capsys):
        assert flows_main(["vrank", "--problems", "c1_mux2",
                           "--resume"]) == 2
        err = capsys.readouterr().err
        assert "--resume requires an active artifact store" in err

    def test_fuzz_resume_without_store(self, capsys):
        assert fuzz_main(["--budget", "1", "--no-corpus", "--resume"]) == 2
        err = capsys.readouterr().err
        assert "--resume requires an active artifact store" in err

    def test_resume_honours_env_enabled_store(self, tmp_path, monkeypatch,
                                              capsys):
        monkeypatch.setenv("REPRO_STORE", "1")
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        reset_default_store()
        assert fuzz_main(["--budget", "2", "--no-corpus", "--quiet",
                          "--resume"]) == 0

    def test_store_flag_takes_optional_directory(self, tmp_path, capsys):
        assert fuzz_main(["--budget", "2", "--no-corpus", "--quiet",
                          "--store", str(tmp_path / "s")]) == 0
        assert os.path.isdir(tmp_path / "s" / "campaign")


class TestSeedConvention:
    """Every CLI rejects a non-integer --seed with exit status 2."""

    @pytest.mark.parametrize("main,argv", [
        (flows_main, ["vrank", "--seed", "x"]),
        (fuzz_main, ["--seed", "x"]),
        (loadgen_main, ["--seed", "x"]),
    ])
    def test_bad_seed_exits_two(self, main, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert "--seed" in capsys.readouterr().err


class TestLoadgenCli:
    def test_zero_users_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            loadgen_main(["--users", "0"])
        assert excinfo.value.code == 2
        assert "--users" in capsys.readouterr().err

    def test_zero_shards_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            loadgen_main(["--users", "5", "--shards", "0"])
        assert excinfo.value.code == 2
        assert "--shards" in capsys.readouterr().err


class TestObsReportCli:
    def test_no_arguments_prints_usage(self, capsys):
        assert report_main([]) == 2
        assert "usage:" in capsys.readouterr().out

    def test_unknown_flag_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            report_main(["trace.jsonl", "--bogus"])
        assert excinfo.value.code == 2
        assert "usage:" in capsys.readouterr().err

    def test_missing_trace_file(self, capsys):
        assert report_main(["/nonexistent/trace.jsonl"]) == 2
        err = capsys.readouterr().err
        assert "cannot read trace" in err

    def test_malformed_jsonl(self, tmp_path, capsys):
        bad = tmp_path / "trace.jsonl"
        bad.write_text('{"type": "span", "name": "x"\nnot json at all\n')
        assert report_main([str(bad)]) == 2
        err = capsys.readouterr().err
        assert "not a JSONL trace" in err

    def test_directory_instead_of_file(self, tmp_path, capsys):
        assert report_main([str(tmp_path)]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_valid_trace_renders(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        records = [
            {"type": "span", "name": "fuzz.case", "span_id": 1,
             "parent_id": None, "start_s": 0.0, "duration_s": 0.002},
            {"type": "metrics", "counters": {"fuzz.cases": 1},
             "histograms": {}, "gauges": {}},
        ]
        trace.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        assert report_main([str(trace), "--tree"]) == 0
        out = capsys.readouterr().out
        assert "fuzz.case" in out
        assert "fuzz.cases" in out
