"""Tests for the mini-Verilog lexer."""

import pytest

from repro.hdl.errors import LexError
from repro.hdl.lexer import TokKind, tokenize


def kinds(src):
    return [t.kind for t in tokenize(src)[:-1]]


def texts(src):
    return [t.text for t in tokenize(src)[:-1]]


class TestBasics:
    def test_empty_source(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind is TokKind.EOF

    def test_keywords_vs_identifiers(self):
        toks = tokenize("module foo")
        assert toks[0].kind is TokKind.KEYWORD
        assert toks[1].kind is TokKind.IDENT

    def test_identifier_with_dollar_and_digits(self):
        toks = tokenize("a1_b$2")
        assert toks[0].text == "a1_b$2"

    def test_line_comment_skipped(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_directive_skipped(self):
        assert texts("`timescale 1ns/1ps\na") == ["a"]

    def test_location_tracking(self):
        toks = tokenize("a\n  b")
        assert toks[0].loc.line == 1
        assert toks[1].loc.line == 2 and toks[1].loc.column == 3


class TestNumbers:
    def test_plain_decimal(self):
        tok = tokenize("42")[0]
        assert tok.kind is TokKind.NUMBER and tok.value == 42

    def test_underscores_in_decimal(self):
        assert tokenize("1_000")[0].value == 1000

    def test_sized_hex(self):
        tok = tokenize("8'hFF")[0]
        assert tok.kind is TokKind.SIZED_NUMBER
        assert tok.value == (8, 0xFF, 0)

    def test_sized_binary_with_x(self):
        width, value, xmask = tokenize("4'b1x0z")[0].value
        assert width == 4
        assert xmask == 0b0101
        assert value == 0b1000

    def test_sized_decimal(self):
        assert tokenize("10'd512")[0].value == (10, 512, 0)

    def test_sized_octal(self):
        assert tokenize("6'o77")[0].value == (6, 0o77, 0)

    def test_value_masked_to_width(self):
        width, value, _ = tokenize("4'hFF")[0].value
        assert width == 4 and value == 0xF

    def test_bad_base_rejected(self):
        with pytest.raises(LexError):
            tokenize("8'q12")

    def test_missing_digits_rejected(self):
        with pytest.raises(LexError):
            tokenize("8'h ;")


class TestOperatorsAndStrings:
    def test_multichar_operators_greedy(self):
        assert texts("a <<< b") == ["a", "<<<", "b"]
        assert texts("a === b") == ["a", "===", "b"]
        assert texts("a <= b") == ["a", "<=", "b"]

    def test_string_literal(self):
        tok = tokenize('"hello"')[0]
        assert tok.kind is TokKind.STRING and tok.value == "hello"

    def test_string_escapes(self):
        assert tokenize(r'"a\nb"')[0].value == "a\nb"

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_system_task(self):
        tok = tokenize("$display")[0]
        assert tok.kind is TokKind.SYSTASK

    def test_unknown_system_task(self):
        with pytest.raises(LexError):
            tokenize("$bogus")

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a £ b")
