"""Bridge: the adversarial critic corpus drives the rule validators.

Each file under ``tests/corpus/critic/`` is a hand-written
plausible-but-invalid candidate labeled with the taxonomy the critic
must assign (``taxonomy=<label>`` in the header comment).  The suite is
the calibration contract from the issue: zero false-accepts on the
labeled corpus, zero false-rejects on the golden references.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.bench.problems import all_problems
from repro.critic import ALL_TAXONOMIES, validate_pragmas, validate_rtl

CORPUS_DIR = Path(__file__).parent / "corpus" / "critic"
_META = re.compile(r"taxonomy=([a-z-]+)\s+rule=(\S+)")


def _corpus_entries() -> list[tuple[str, str, str, str]]:
    entries = []
    for path in sorted(CORPUS_DIR.iterdir()):
        text = path.read_text()
        meta = _META.search(text)
        assert meta, f"{path.name}: missing 'taxonomy=... rule=...' header"
        entries.append((path.name, meta.group(1), meta.group(2), text))
    return entries


ENTRIES = _corpus_entries()


class TestCorpusShape:
    def test_corpus_is_seeded(self):
        assert len(ENTRIES) >= 6

    def test_labels_are_known_taxonomies(self):
        for name, taxonomy, _rule, _text in ENTRIES:
            assert taxonomy in ALL_TAXONOMIES, (name, taxonomy)

    def test_required_failure_classes_covered(self):
        covered = {taxonomy for _, taxonomy, _, _ in ENTRIES}
        assert {"width", "xprop", "pragma", "vacuity",
                "dead-reset", "trojan"} <= covered


class TestRuleValidatorsFlagCorpus:
    @pytest.mark.parametrize(
        "name,taxonomy,rule,text",
        ENTRIES, ids=[e[0] for e in ENTRIES])
    def test_flagged_with_expected_taxonomy(self, name, taxonomy, rule, text):
        if name.endswith(".c"):
            verdict = validate_pragmas(text)
        else:
            verdict = validate_rtl(text)
        assert not verdict.ok, f"{name}: critic accepted a bad candidate"
        assert taxonomy in verdict.labels(), \
            f"{name}: expected label '{taxonomy}', got {verdict.labels()}"

    def test_false_accept_rate_is_zero(self):
        accepted = [name for name, taxonomy, _rule, text in ENTRIES
                    if (validate_pragmas(text) if name.endswith(".c")
                        else validate_rtl(text)).ok]
        assert accepted == []


class TestCalibrationOnReferences:
    def test_zero_false_rejects_on_golden_references(self):
        rejected = [(p.problem_id,
                     [str(f) for f in validate_rtl(p.reference).failures])
                    for p in all_problems()
                    if not validate_rtl(p.reference).ok]
        assert rejected == []

    def test_rule_details_name_the_rule(self):
        for name, _taxonomy, rule, text in ENTRIES:
            if name.endswith(".c"):
                verdict = validate_pragmas(text)
            else:
                verdict = validate_rtl(text)
            assert any(f.rule == rule for f in verdict.failures), \
                (name, rule, [f.rule for f in verdict.failures])
