"""Tests for HLSTester: slicing, spectra, and the discrepancy campaign."""

from repro.bench.workloads import TESTER_WORKLOADS
from repro.bench.workloads import tester_workload as get_tester_workload
from repro.hls import (CoverageMap, HlsTester, Machine, adapt_testbench,
                       backward_slice, check_compatibility, cparse,
                       spectrum_of)
from repro.hls import test_kernel as run_campaign
from repro.llm import SimulatedLLM


KERNEL = """
int mac(int a[8], int k) {
    int acc = 0;
    for (int i = 0; i < 8; i++) {
        int scaled = a[i] * k;
        acc += scaled;
    }
    return acc;
}
"""


class TestSlicing:
    def test_key_variables_reach_criterion(self):
        result = backward_slice(cparse(KERNEL), "mac")
        assert "acc" in result.key_variables
        assert "scaled" in result.key_variables
        assert "k" in result.key_variables

    def test_unrelated_variable_excluded(self):
        src = """
int f(int a) {
    int unrelated = 1234;
    unrelated = unrelated * 2;
    int out = a + 1;
    return out;
}"""
        result = backward_slice(cparse(src), "f")
        assert "out" in result.key_variables
        assert "unrelated" not in result.key_variables

    def test_control_dependencies_included(self):
        src = """
int f(int a, int sel) {
    int out = 0;
    if (sel > 3) { out = a; }
    else { out = a * 2; }
    return out;
}"""
        result = backward_slice(cparse(src), "f")
        assert "sel" in result.key_variables

    def test_array_params_are_criterion(self):
        src = "void f(int out[4], int a) { out[0] = a; }"
        result = backward_slice(cparse(src), "f")
        assert "out" in result.criterion


class TestSpectra:
    def _spectrum(self, src, fn, *args):
        machine = Machine(cparse(src), trace=True)
        return spectrum_of(machine.call(fn, *args))

    def test_same_input_same_spectrum(self):
        a = self._spectrum(KERNEL, "mac", [1] * 8, 2)
        b = self._spectrum(KERNEL, "mac", [1] * 8, 2)
        assert a.signature() == b.signature()

    def test_branchy_inputs_differ(self):
        src = """
int f(int a) {
    if (a > 100) { return a * 2; }
    return a;
}"""
        a = self._spectrum(src, "f", 5)
        b = self._spectrum(src, "f", 500)
        assert a.signature() != b.signature()

    def test_coverage_map_redundancy(self):
        cov = CoverageMap()
        s = self._spectrum(KERNEL, "mac", [1] * 8, 2)
        assert not cov.is_redundant(s)
        assert cov.observe(s)
        assert cov.is_redundant(s)
        assert not cov.observe(s)

    def test_key_variable_filter_shrinks_profile(self):
        machine = Machine(cparse(KERNEL), trace=True)
        result = machine.call("mac", list(range(8)), 3)
        full = spectrum_of(result)
        filtered = spectrum_of(result, {"acc"})
        assert len(filtered.value_profile) <= len(full.value_profile)


class TestAdaptTestbench:
    def test_testbench_becomes_compatible(self):
        tb = """
int harness(int n) {
    int *buf = malloc(8 * sizeof(int));
    for (int i = 0; i < 8; i++) { buf[i] = i; }
    int s = 0;
    for (int i = 0; i < 8; i++) { s += buf[i] * n; }
    printf("result %d\\n", s);
    free(buf);
    return s;
}"""
        adapted, applied = adapt_testbench(tb, "harness",
                                           SimulatedLLM("gpt-4", seed=1))
        assert applied
        report = check_compatibility(cparse(adapted), "harness")
        assert "HLS001" not in {i.code for i in report.issues}


class TestCampaign:
    def test_overflow_discrepancies_found(self):
        w = get_tester_workload("mac_overflow")
        report = run_campaign(w.source, w.top, w.width_overrides,
                             budget=80, seed=3)
        assert report.discrepancies
        assert report.sims_run + report.sims_skipped \
            == report.candidates_generated

    def test_control_kernel_clean(self):
        w = get_tester_workload("max_window")
        report = run_campaign(w.source, w.top, w.width_overrides,
                             budget=60, seed=3)
        assert not report.discrepancies

    def test_pipeline_hazard_detected(self):
        w = get_tester_workload("pipelined_acc")
        tester = HlsTester(w.source, w.top, pipeline_hazard=True,
                           llm=SimulatedLLM("gpt-4", seed=2), seed=2)
        report = tester.run(budget=60)
        assert report.discrepancies

    def test_redundancy_filter_skips_simulations(self):
        w = get_tester_workload("mac_overflow")
        with_filter = HlsTester(w.source, w.top, w.width_overrides,
                                llm=SimulatedLLM("gpt-4", seed=4), seed=4,
                                use_redundancy_filter=True).run(budget=100)
        without = HlsTester(w.source, w.top, w.width_overrides,
                            llm=SimulatedLLM("gpt-4", seed=4), seed=4,
                            use_redundancy_filter=False).run(budget=100)
        assert with_filter.sims_skipped > 0
        assert without.sims_skipped == 0
        assert with_filter.sims_run < without.sims_run

    def test_llm_guidance_accelerates_discovery(self):
        """Boundary-value proposals should find at least as many
        discrepancies as blind mutation at matched budget."""
        w = get_tester_workload("checksum16")
        guided = HlsTester(w.source, w.top, w.width_overrides,
                           llm=SimulatedLLM("gpt-4", seed=6), seed=6,
                           use_llm_guidance=True).run(budget=80)
        blind = HlsTester(w.source, w.top, w.width_overrides,
                          llm=SimulatedLLM("gpt-4", seed=6), seed=6,
                          use_llm_guidance=False).run(budget=80)
        assert len(guided.discrepancies) >= len(blind.discrepancies)

    def test_report_accounting(self):
        w = get_tester_workload("scaled_sum")
        report = run_campaign(w.source, w.top, w.width_overrides,
                             budget=50, seed=1)
        assert report.candidates_generated == 50
        assert 0.0 <= report.skip_rate <= 1.0
        assert report.coverage > 0
        assert "candidates" in report.summary()

    def test_all_tester_workloads_behave_as_annotated(self):
        for w in TESTER_WORKLOADS:
            report = HlsTester(w.source, w.top, w.width_overrides,
                               pipeline_hazard=w.pipeline_hazard,
                               llm=SimulatedLLM("gpt-4", seed=9),
                               seed=9).run(budget=60)
            found = bool(report.discrepancies)
            assert found == w.has_discrepancy, \
                f"{w.workload_id}: expected discrepancy={w.has_discrepancy}"
