"""Unit and property tests for repro.hdl.values.Logic."""

import pytest
from hypothesis import given, strategies as st

from repro.hdl.values import Logic, concat_all


def bits(width=8):
    return st.integers(min_value=0, max_value=(1 << width) - 1)


class TestConstruction:
    def test_from_int_masks_to_width(self):
        assert Logic.from_int(0x1FF, 8).to_int() == 0xFF

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            Logic(0, 0, 0)

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            Logic(-3, 0, 0)

    def test_unknown_is_all_x(self):
        x = Logic.unknown(4)
        assert x.has_x and x.xmask == 0xF

    def test_x_bits_normalized_to_zero_value(self):
        v = Logic(4, 0b1111, 0b0101)
        assert v.value == 0b1010

    def test_equality_is_structural(self):
        assert Logic(4, 3, 0) == Logic(4, 3, 0)
        assert Logic(4, 3, 0) != Logic(4, 3, 1)


class TestArithmetic:
    def test_add_keeps_carry_truncates_on_resize(self):
        # Context-determined sizing: the raw sum keeps its carry bit, and
        # assignment (resize) truncates to the target width.
        a = Logic.from_int(0xFF, 8)
        b = Logic.from_int(1, 8)
        total = a.add(b)
        assert total.width == 9 and total.to_int() == 0x100
        assert total.resize(8).to_int() == 0

    def test_sub_wraps_at_grown_width(self):
        diff = Logic.from_int(0, 8).sub(Logic.from_int(1, 8))
        assert diff.width == 9
        assert diff.resize(8).to_int() == 0xFF

    def test_mul_full_product(self):
        product = Logic.from_int(7, 8).mul(Logic.from_int(6, 8))
        assert product.to_int() == 42
        assert product.width == 16

    def test_div_by_zero_is_x(self):
        assert Logic.from_int(5, 8).div(Logic.from_int(0, 8)).has_x

    def test_mod(self):
        assert Logic.from_int(17, 8).mod(Logic.from_int(5, 8)).to_int() == 2

    def test_x_poisons_arithmetic(self):
        assert Logic.from_int(5, 8).add(Logic.unknown(8)).has_x

    def test_neg(self):
        assert Logic.from_int(1, 8).neg().to_int() == 0xFF

    def test_to_signed(self):
        assert Logic.from_int(0xFF, 8).to_signed() == -1
        assert Logic.from_int(0x7F, 8).to_signed() == 127

    @given(bits(), bits())
    def test_add_matches_python(self, a, b):
        out = Logic.from_int(a, 8).add(Logic.from_int(b, 8))
        assert out.to_int() == a + b
        assert out.resize(8).to_int() == (a + b) & 0xFF

    @given(bits(), bits())
    def test_mul_matches_python(self, a, b):
        out = Logic.from_int(a, 8).mul(Logic.from_int(b, 8))
        assert out.to_int() == a * b


class TestBitwise:
    @given(bits(), bits())
    def test_and_or_xor_match_python(self, a, b):
        la, lb = Logic.from_int(a, 8), Logic.from_int(b, 8)
        assert la.and_(lb).to_int() == (a & b)
        assert la.or_(lb).to_int() == (a | b)
        assert la.xor(lb).to_int() == (a ^ b)

    def test_zero_and_x_is_zero(self):
        # Known-0 AND anything is 0 even when the other bit is X.
        out = Logic(1, 0, 0).and_(Logic.unknown(1))
        assert out.is_false()

    def test_one_or_x_is_one(self):
        out = Logic(1, 1, 0).or_(Logic.unknown(1))
        assert out.is_true() and not out.has_x

    def test_x_and_one_is_x(self):
        assert Logic.unknown(1).and_(Logic(1, 1, 0)).has_x

    def test_not_flips_known_keeps_x(self):
        v = Logic(4, 0b0010, 0b1000)
        out = v.not_()
        assert out.xmask == 0b1000
        assert out.value == 0b0101

    @given(bits())
    def test_double_not_is_identity(self, a):
        v = Logic.from_int(a, 8)
        assert v.not_().not_() == v


class TestShifts:
    @given(bits(), st.integers(min_value=0, max_value=10))
    def test_shl_matches_python(self, a, n):
        out = Logic.from_int(a, 8).shl(Logic.from_int(n, 4))
        assert out.to_int() == (a << n) & 0xFF

    @given(bits(), st.integers(min_value=0, max_value=10))
    def test_shr_matches_python(self, a, n):
        out = Logic.from_int(a, 8).shr(Logic.from_int(n, 4))
        assert out.to_int() == a >> n

    def test_shift_by_x_is_x(self):
        assert Logic.from_int(3, 8).shl(Logic.unknown(3)).has_x


class TestComparison:
    @given(bits(), bits())
    def test_comparisons_match_python(self, a, b):
        la, lb = Logic.from_int(a, 8), Logic.from_int(b, 8)
        assert la.eq(lb).to_int() == int(a == b)
        assert la.lt(lb).to_int() == int(a < b)
        assert la.ge(lb).to_int() == int(a >= b)

    def test_compare_with_x_is_x(self):
        assert Logic.from_int(3, 4).eq(Logic.unknown(4)).has_x

    def test_case_eq_compares_x_literally(self):
        a = Logic(4, 0b0010, 0b1000)
        b = Logic(4, 0b0010, 0b1000)
        assert a.case_eq(b).is_true()
        assert a.case_eq(Logic(4, 0b0010, 0)).is_false()


class TestLogicalAndReductions:
    def test_logical_not_of_x_with_known_one_bit(self):
        v = Logic(4, 0b0100, 0b0001)
        assert v.logical_not().is_false()  # definitely truthy input

    def test_logical_and_short_circuit_zero(self):
        assert Logic(1, 0, 0).logical_and(Logic.unknown(1)).is_false()

    def test_logical_or_with_known_one(self):
        assert Logic.unknown(1).logical_or(Logic(1, 1, 0)).is_true()

    def test_reduce_and(self):
        assert Logic.from_int(0xF, 4).reduce_and().is_true()
        assert Logic.from_int(0xE, 4).reduce_and().is_false()

    def test_reduce_and_with_x_and_a_zero_bit(self):
        v = Logic(4, 0b0110, 0b0001)  # bit3 known 0
        assert v.reduce_and().is_false()

    def test_reduce_or(self):
        assert Logic.from_int(0, 4).reduce_or().is_false()
        assert Logic(4, 0, 0b0010).reduce_or().has_x

    @given(bits())
    def test_reduce_xor_is_parity(self, a):
        assert Logic.from_int(a, 8).reduce_xor().to_int() == bin(a).count("1") % 2


class TestStructure:
    def test_bit_select(self):
        v = Logic.from_int(0b1010, 4)
        assert v.bit(1).is_true()
        assert v.bit(0).is_false()

    def test_bit_out_of_range_is_x(self):
        assert Logic.from_int(1, 4).bit(7).has_x

    def test_slice(self):
        v = Logic.from_int(0xAB, 8)
        assert v.slice(7, 4).to_int() == 0xA
        assert v.slice(3, 0).to_int() == 0xB

    def test_slice_swapped_bounds(self):
        assert Logic.from_int(0xAB, 8).slice(0, 3).to_int() == 0xB

    def test_concat_orders_high_low(self):
        hi = Logic.from_int(0xA, 4)
        lo = Logic.from_int(0xB, 4)
        assert hi.concat(lo).to_int() == 0xAB

    def test_concat_all(self):
        parts = [Logic.from_int(x, 4) for x in (1, 2, 3)]
        assert concat_all(parts).to_int() == 0x123

    def test_concat_all_empty_raises(self):
        with pytest.raises(ValueError):
            concat_all([])

    def test_replicate(self):
        assert Logic.from_int(0b10, 2).replicate(3).to_int() == 0b101010

    def test_replicate_zero_raises(self):
        with pytest.raises(ValueError):
            Logic.from_int(1, 1).replicate(0)

    def test_resize_extends_and_truncates(self):
        v = Logic.from_int(0xF, 4)
        assert v.resize(8).to_int() == 0xF
        assert Logic.from_int(0xAB, 8).resize(4).to_int() == 0xB

    @given(bits(4), bits(4))
    def test_concat_then_slice_roundtrip(self, hi, lo):
        v = Logic.from_int(hi, 4).concat(Logic.from_int(lo, 4))
        assert v.slice(7, 4).to_int() == hi
        assert v.slice(3, 0).to_int() == lo

    def test_str_plain(self):
        assert str(Logic.from_int(0xFF, 8)) == "8'hff"

    def test_str_with_x(self):
        assert "x" in str(Logic(2, 0b01, 0b10))
