"""Observability layer: tracer span nesting, sinks, metrics, report
rendering, and the end-to-end acceptance trace of an agent run."""

import json
import threading

import pytest

from repro import obs
from repro.obs import report as obs_report
from repro.obs.trace import TRACE_ENV, TRACE_FILE_ENV


@pytest.fixture(autouse=True)
def _isolated_tracer(monkeypatch):
    """Each test starts from the env-default tracer and a clean registry.

    The artifact store is forced off: the end-to-end trace assertions
    require compiles and simulations to actually *run*, which an ambient
    ``REPRO_STORE`` (the CI warm-start lane) would serve from disk.
    """
    from repro.store import reset_default_store
    monkeypatch.delenv(TRACE_ENV, raising=False)
    monkeypatch.delenv(TRACE_FILE_ENV, raising=False)
    monkeypatch.setenv("REPRO_STORE", "0")
    reset_default_store()
    obs.reset_tracer()
    obs.reset_metrics()
    yield
    reset_default_store()
    obs.reset_tracer()
    obs.reset_metrics()


def _memory_tracer():
    sink = obs.InMemorySink()
    tracer = obs.Tracer(sink, enabled=True)
    obs.install_tracer(tracer)
    return sink, tracer


class TestTracer:
    def test_disabled_by_default(self):
        tracer = obs.get_tracer()
        assert not tracer.enabled
        assert not obs.enabled()

    def test_disabled_tracer_is_noop(self):
        tracer = obs.get_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        # One shared immutable span: no allocation, no records.
        assert outer is inner is obs.NOOP_SPAN
        assert outer.set(key="value") is obs.NOOP_SPAN

    def test_span_nesting_and_attrs(self):
        sink, tracer = _memory_tracer()
        with tracer.span("outer", phase="x") as outer:
            with tracer.span("inner") as inner:
                inner.set(detail=42)
        spans = {s["name"]: s for s in sink.spans()}
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
        assert spans["outer"]["parent_id"] is None
        assert spans["outer"]["attrs"] == {"phase": "x"}
        assert spans["inner"]["attrs"] == {"detail": 42}
        # Children are emitted on exit, so inner lands before outer.
        assert [s["name"] for s in sink.spans()] == ["inner", "outer"]

    def test_span_duration_uses_injected_clock(self):
        sink = obs.InMemorySink()
        ticks = iter([10.0, 13.5])
        tracer = obs.Tracer(sink, enabled=True, clock=lambda: next(ticks))
        with tracer.span("timed"):
            pass
        [span] = sink.spans()
        assert span["duration_s"] == pytest.approx(3.5)

    def test_exception_marks_span_and_propagates(self):
        sink, tracer = _memory_tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        [span] = sink.spans()
        assert span["attrs"]["error"] == "ValueError"

    def test_threads_get_independent_stacks(self):
        sink, tracer = _memory_tracer()
        ready = threading.Event()

        def worker():
            with tracer.span("thread-span"):
                ready.wait(5.0)

        with tracer.span("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            ready.set()
            t.join(5.0)
        spans = {s["name"]: s for s in sink.spans()}
        # The worker's span must not adopt the main thread's open span.
        assert spans["thread-span"]["parent_id"] is None

    def test_env_knobs_build_jsonl_tracer(self, monkeypatch, tmp_path):
        path = tmp_path / "trace.jsonl"
        monkeypatch.setenv(TRACE_ENV, "1")
        monkeypatch.setenv(TRACE_FILE_ENV, str(path))
        obs.reset_tracer()
        with obs.span("from-env", tag="t"):
            pass
        obs.get_tracer().close()
        [record] = obs.read_jsonl(str(path))
        assert record["name"] == "from-env"
        assert record["attrs"] == {"tag": "t"}


class TestSinks:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "out.jsonl"
        sink = obs.JsonlSink(str(path))
        records = [{"type": "span", "name": "a", "duration_s": 0.25},
                   {"type": "metrics", "counters": {"n": 3}}]
        for r in records:
            sink.emit(r)
        sink.close()
        assert obs.read_jsonl(str(path)) == records

    def test_in_memory_filters(self):
        sink = obs.InMemorySink()
        sink.emit({"type": "span", "name": "s"})
        sink.emit({"type": "metrics", "counters": {}})
        assert [r["name"] for r in sink.spans()] == ["s"]
        assert len(sink.metrics()) == 1
        sink.clear()
        assert sink.records == []


class TestMetrics:
    def test_counter_and_histogram(self):
        reg = obs.MetricsRegistry()
        reg.counter("hits").add(2)
        reg.counter("hits").add(3)
        for v in (1.0, 3.0):
            reg.histogram("lat").observe(v)
        snap = reg.snapshot()
        assert snap["counters"]["hits"] == 5
        assert snap["histograms"]["lat"]["count"] == 2
        assert snap["histograms"]["lat"]["mean"] == pytest.approx(2.0)
        assert snap["histograms"]["lat"]["max"] == pytest.approx(3.0)

    def test_flush_metrics_noop_when_disabled(self):
        obs.get_metrics().counter("x").add(1)
        assert obs.flush_metrics() is None

    def test_flush_metrics_includes_cache_gauges(self):
        sink, _ = _memory_tracer()
        obs.get_metrics().counter("x").add(7)
        record = obs.flush_metrics()
        assert record["counters"]["x"] == 7
        assert any(k.startswith("hdl.cache.") for k in record["gauges"])
        assert sink.metrics() == [record]


class TestReport:
    def _records(self):
        return [
            {"type": "span", "name": "a", "span_id": 1, "parent_id": None,
             "start_s": 0.0, "duration_s": 0.2, "attrs": {}},
            {"type": "span", "name": "b", "span_id": 2, "parent_id": 1,
             "start_s": 0.05, "duration_s": 0.1, "attrs": {"k": 1}},
            {"type": "span", "name": "b", "span_id": 3, "parent_id": 1,
             "start_s": 0.15, "duration_s": 0.3, "attrs": {}},
            {"type": "metrics", "counters": {"c": 4},
             "histograms": {"h": {"count": 1, "total": 2.0, "min": 2.0,
                                  "max": 2.0, "mean": 2.0}},
             "gauges": {"g": 0.5}},
        ]

    def test_aggregate_spans(self):
        agg = {e["name"]: e for e in obs_report.aggregate_spans(
            self._records())}
        assert agg["b"]["count"] == 2
        assert agg["b"]["total_s"] == pytest.approx(0.4)
        assert agg["b"]["max_s"] == pytest.approx(0.3)

    def test_render_mentions_spans_and_metrics(self):
        text = obs_report.render(self._records())
        assert "telemetry: 3 spans" in text
        for token in ("a", "b", "c", "h", "g"):
            assert token in text

    def test_span_tree_indents_children(self):
        tree = obs_report.span_tree(self._records())
        lines = tree.splitlines()
        assert lines[0].startswith("a ")
        assert all(line.startswith("  b ") for line in lines[1:])

    def test_cli_renders_jsonl(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            for r in self._records():
                fh.write(json.dumps(r) + "\n")
        assert obs_report.main([str(path), "--tree"]) == 0
        out = capsys.readouterr().out
        assert "telemetry: 3 spans" in out
        assert "counter" in out


class TestEndToEndTrace:
    """Acceptance: a traced agent run + parallel evaluation produces a JSONL
    trace with nested spans for every pipeline stage plus compile-cache and
    evaluator metrics, all renderable by ``repro.obs.report``."""

    def test_agent_run_trace(self, monkeypatch, tmp_path):
        from repro.bench import all_problems, evaluate_model
        from repro.core import AgentConfig, EdaAgent
        from repro.hdl import CompileCache, get_default_cache, \
            set_default_cache

        path = tmp_path / "agent.jsonl"
        monkeypatch.setenv(TRACE_ENV, "1")
        monkeypatch.setenv(TRACE_FILE_ENV, str(path))
        obs.reset_tracer()
        obs.reset_metrics()
        old_cache = get_default_cache()
        set_default_cache(CompileCache())
        try:
            problem = all_problems()[0]
            report = EdaAgent(AgentConfig(model="gpt-4o"), seed=1).run(problem)
            evaluate_model("gpt-4o", all_problems()[:2], k=2, seed=3,
                           jobs=2, mode="thread")
            obs.flush_metrics()
            obs.get_tracer().close()
        finally:
            set_default_cache(old_cache)

        records = obs.read_jsonl(str(path))
        spans = {r["name"]: r for r in records if r.get("type") == "span"}
        run_id = spans["agent.run"]["span_id"]
        for stage in ("specification", "rtl_generation", "static_analysis",
                      "verification", "synthesis", "qor"):
            name = f"stage.{stage}"
            assert name in spans, f"missing span for pipeline stage {stage}"
            assert spans[name]["parent_id"] == run_id
        assert spans["agent.run"]["attrs"]["success"] == report.success
        assert "bench.evaluate_model" in spans
        assert "exec.map" in spans
        assert "hdl.compile" in spans

        # agent.run flushes one snapshot itself; the explicit flush above
        # adds the final cumulative one.
        metrics = [r for r in records if r.get("type") == "metrics"][-1]
        assert metrics["counters"]["exec.tasks"] >= 4
        assert metrics["counters"]["sim.runs"] >= 1
        assert "exec.task_latency_s" in metrics["histograms"]
        assert metrics["gauges"]["hdl.cache.parse.hits"] >= 1

        rendered = obs_report.render(str(path))
        assert "stage.verification" in rendered
        assert "hdl.cache.parse.hit_rate" in rendered

    def test_disabled_tracing_keeps_statistics_identical(self, monkeypatch):
        """REPRO_TRACE=0 (the default) must not perturb experiment stats."""
        import pickle

        from repro.bench import all_problems, evaluate_model
        from repro.hdl import CompileCache, set_default_cache

        def signature(suite):
            return [(p.problem_id,
                     [(s.passed, s.score, pickle.dumps(s.result))
                      for s in p.samples]) for p in suite.problems]

        problems = all_problems()[:2]
        monkeypatch.setenv(TRACE_ENV, "0")
        obs.reset_tracer()
        set_default_cache(CompileCache())
        untraced = signature(evaluate_model("gpt-4", problems, k=2, seed=9))
        sink, _ = _memory_tracer()
        set_default_cache(CompileCache())
        traced = signature(evaluate_model("gpt-4", problems, k=2, seed=9))
        assert untraced == traced
        assert sink.spans()  # the traced run actually recorded spans
