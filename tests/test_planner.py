"""Planner agent tests: tool-registry conformance, grounding, determinism.

The conformance half mirrors ``tests/test_flow_registry`` for the tool
catalogue; the determinism half is the planner's acceptance gate —
byte-identity across ``REPRO_SERVICE=0/1`` and direct-vs-scheduler
execution, plus the pipeline-inexpressible PPA tuning loop.
"""

import pytest

from repro.core import (PlannerAgent, parse_action, render_action,
                        resolve_planner)
from repro.core.state import DesignState
from repro.engine import Budget
from repro.exec import SweepScheduler, planner_task_cell
from repro.llm import get_model
from repro.tasks import TASKS, get_task, run_task, run_task_suite
from repro.tools import (ToolArg, ToolContext, ToolCost, ToolError,
                         ToolOutcome, ToolSpec, build_tool_index, get_tool,
                         list_tools, register_tool)


def _report_key(report):
    """Everything observable about one planner run, for identity checks."""
    return (report.summary(), report.transcript(), report.tool_sequence,
            report.success, report.stop_reason, report.total_tokens)


class TestToolRegistry:
    def test_expected_tools_registered(self):
        names = {spec.name for spec in list_tools()}
        assert names == {"generate_rtl", "compile_rtl", "lint_rtl",
                         "critic_review", "run_testbench", "crosscheck",
                         "fuzz_spot_check", "synthesize", "ppa_report",
                         "tune_synthesis", "hls_repair", "doc_lookup",
                         "finish"}

    def test_listing_is_sorted(self):
        names = [spec.name for spec in list_tools()]
        assert names == sorted(names)

    def test_unknown_tool_lists_known_names(self):
        with pytest.raises(KeyError, match="known tools.*synthesize"):
            get_tool("route_and_place")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            register_tool(get_tool("finish"))

    def test_specs_are_complete(self):
        for spec in list_tools():
            assert isinstance(spec, ToolSpec)
            assert callable(spec.fn)
            assert spec.summary and spec.doc, spec.name
            assert isinstance(spec.args, tuple)
            assert all(isinstance(a, ToolArg) for a in spec.args), spec.name
            assert isinstance(spec.returns, tuple), spec.name
            assert isinstance(spec.requires, tuple), spec.name
            assert isinstance(spec.cost, ToolCost), spec.name

    def test_validate_rejects_unknown_argument(self):
        errors = get_tool("generate_rtl").validate({"beam_width": 7})
        assert any("unknown argument" in e for e in errors)

    def test_validate_rejects_missing_required(self):
        errors = get_tool("doc_lookup").validate({})
        assert any("missing required" in e for e in errors)

    def test_validate_rejects_type_mismatch(self):
        errors = get_tool("generate_rtl").validate({"k": "three"})
        assert any("expects int" in e for e in errors)

    def test_bound_args_apply_defaults(self):
        bound = get_tool("fuzz_spot_check").bound_args({})
        assert bound["vectors"] == 64

    def test_invoke_gates_on_missing_modality(self):
        ctx = ToolContext(llm=None, state=DesignState(spec="x"))
        with pytest.raises(ToolError, match="requires rtl"):
            get_tool("run_testbench").invoke(ctx)

    def test_invoke_raises_on_schema_violation(self):
        ctx = ToolContext(llm=None, state=DesignState(spec="x"))
        with pytest.raises(ToolError, match="unknown argument"):
            get_tool("finish").invoke(ctx, {"reason": "done"})


class TestGrounding:
    def test_ranking_is_deterministic_and_cited(self):
        index = build_tool_index(list_tools(), spec_text="adder spec")
        first = index.rank("report PPA and fix the slowest path")
        second = index.rank("report PPA and fix the slowest path")
        assert [(g.tool, g.score) for g in first] \
            == [(g.tool, g.score) for g in second]
        assert first[0].tool in ("ppa_report", "tune_synthesis")
        assert any(c.startswith("tool:") for c in first[0].citations)

    def test_spec_documents_ground_but_never_rank(self):
        index = build_tool_index(
            list_tools(), spec_text="an 8-bit ripple carry adder module")
        for grounded in index.rank("design the 8-bit adder"):
            assert not grounded.tool.startswith("spec:")


class TestActionGrammar:
    def test_roundtrip(self):
        text = render_action("synthesize", {"x": 1}, ("tool:synthesize",),
                             "next step")
        action = parse_action(text)
        assert not action.malformed
        assert action.tool == "synthesize"
        assert action.args == {"x": 1}
        assert action.citations == ("tool:synthesize",)
        assert action.rationale == "next step"

    def test_prose_is_malformed_not_fatal(self):
        action = parse_action("I think we should synthesize next.")
        assert action.malformed
        assert "no CALL line" in action.error

    def test_bad_json_is_malformed(self):
        action = parse_action("CALL synthesize {not json}")
        assert action.malformed

    def test_non_object_args_are_malformed(self):
        action = parse_action("CALL synthesize [1, 2]")
        assert action.malformed


class TestPlannerDeterminism:
    def test_service_mode_is_byte_identical(self, monkeypatch):
        from repro.service import reset_default_broker
        monkeypatch.setenv("REPRO_SERVICE", "0")
        direct = run_task("adder_verify", "gpt-4o", seed=0)
        monkeypatch.setenv("REPRO_SERVICE", "1")
        reset_default_broker()
        try:
            brokered = run_task("adder_verify", "gpt-4o", seed=0)
        finally:
            reset_default_broker()
        assert _report_key(brokered) == _report_key(direct)

    def test_scheduler_fanout_matches_direct(self):
        cells = [("adder_verify", "gpt-4o", s, None) for s in (0, 1)]
        direct = [run_task("adder_verify", "gpt-4o", seed=s) for s in (0, 1)]
        fanned = SweepScheduler(2).map(planner_task_cell, cells)
        assert [_report_key(r) for r in fanned] \
            == [_report_key(r) for r in direct]

    def test_planner_head_rides_the_broker_seam(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE", "1")
        client = resolve_planner(get_model("gpt-4o"), seed=0)
        assert client.broker is not None
        monkeypatch.setenv("REPRO_SERVICE", "0")
        assert resolve_planner(get_model("gpt-4o"), seed=0).broker is None


class TestCriticThreading:
    def test_rejection_verdicts_become_repair_context(self):
        """critic_review rejections land in DesignState.critic_verdicts and
        thread into the regeneration feedback the planner conditions on."""
        state = DesignState(spec="x")
        state.rtl_source = ("module bad(output wire y);\n"
                           "  assign y = phantom_net;\nendmodule\n")
        state.module_name = "bad"
        ctx = ToolContext(llm=None, state=state)
        outcome = get_tool("critic_review").invoke(ctx)
        assert not outcome.ok
        assert state.critic_verdicts
        feedback = PlannerAgent("gpt-4o")._feedback_text(ctx)
        assert state.critic_verdicts[0] in feedback


class TestTaskSuite:
    def test_known_tasks_are_well_formed(self):
        assert len(TASKS) >= 6
        assert sum(not t.pipeline_expressible for t in TASKS) >= 1
        for task in TASKS:
            assert task.goal and callable(task.check)

    def test_unknown_task_lists_known_ids(self):
        with pytest.raises(KeyError, match="known tasks.*adder_verify"):
            get_task("fabricate_wafer")

    def test_ppa_tune_needs_a_pipeline_inexpressible_sequence(self):
        """The acceptance scenario: report -> targeted fix -> re-report,
        a loop the fixed stage pipeline (one synthesis visit) cannot
        express."""
        report = run_task("alu_ppa_tune", "gpt-4o", seed=0)
        assert report.success
        seq = report.tool_sequence
        i = seq.index("ppa_report")
        j = seq.index("tune_synthesis", i + 1)
        assert "ppa_report" in seq[j + 1:]

    def test_suite_scores_pass_at_k(self):
        result = run_task_suite("gpt-4o", k=2,
                                task_ids=("adder_verify",), jobs=1)
        assert result.k == 2
        assert len(result.scores) == 1
        score = result.scores[0]
        assert score.attempts == 2
        assert 0 <= score.passes <= 2
        assert len(score.tool_sequences) == 2
        assert "adder_verify" in result.summary()

    def test_max_steps_bounds_the_loop(self):
        report = PlannerAgent("gpt-4o", seed=0, max_steps=1).run(
            "design the 8-bit adder and verify it")
        assert len(report.steps) <= 1

    def test_token_budget_stops_the_loop(self):
        report = run_task("adder_verify", "gpt-4o", seed=0,
                          budget=Budget(max_tokens=1))
        assert report.stop_reason == "budget:tokens"
        assert len(report.steps) <= 2
