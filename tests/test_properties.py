"""Property-based cross-checks between independent executors.

These are the strongest tests in the suite: two implementations that share
no code must agree on randomly generated programs/designs.

* random combinational Verilog: event-driven simulator vs synthesized AIG,
* random mini-C programs (the SLT snippet space): interpreter vs compiled
  execution on the RISC-V core,
* random AIGs: optimization passes preserve the boolean function.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.hdl import parse_module
from repro.hls import Machine, cparse
from repro.riscv import assemble, compile_program, run_program
from repro.slt import random_genome
from repro.synth import Aig, check_aigs, check_against_simulation, \
    optimize, synthesize_module


# --------------------------------------------------------------------------
# Random combinational Verilog expressions
# --------------------------------------------------------------------------

_BIN_OPS = ["+", "-", "&", "|", "^", "<<", ">>", "*"]
_CMP_OPS = ["==", "!=", "<", ">="]


def _random_expr(rng: random.Random, names: list[str], depth: int) -> str:
    if depth <= 0 or rng.random() < 0.3:
        roll = rng.random()
        if roll < 0.55:
            return rng.choice(names)
        if roll < 0.8:
            return f"4'd{rng.randrange(16)}"
        name = rng.choice(names)
        return f"{name}[{rng.randrange(4)}]"
    roll = rng.random()
    left = _random_expr(rng, names, depth - 1)
    right = _random_expr(rng, names, depth - 1)
    if roll < 0.55:
        op = rng.choice(_BIN_OPS)
        if op in ("<<", ">>"):
            right = f"2'd{rng.randrange(4)}"
        return f"({left} {op} {right})"
    if roll < 0.7:
        return f"({left} {rng.choice(_CMP_OPS)} {right})"
    if roll < 0.8:
        cond = _random_expr(rng, names, depth - 1)
        return f"(({cond}) != 0 ? ({left}) : ({right}))"
    if roll < 0.9:
        return f"(~{left})"
    return f"{{{left}, {right}}}"


def _random_module(seed: int) -> str:
    rng = random.Random(seed)
    names = ["a", "b", "c"]
    body = _random_expr(rng, names, depth=3)
    return (f"module rand_mod(input [3:0] a, input [3:0] b, input [3:0] c, "
            f"output [7:0] y);\n"
            f"  assign y = {body};\n"
            f"endmodule\n")


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_simulator_and_synthesizer_agree_on_random_logic(seed):
    src = _random_module(seed)
    module = parse_module(src)
    try:
        synth = synthesize_module(module)
    except Exception:
        return  # outside the synthesizable subset (e.g. width explosion)
    cec = check_against_simulation(synth, src, module, vectors=24,
                                   seed=seed + 1)
    assert cec.equivalent, f"seed {seed}: {cec.counterexample}\n{src}"


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_optimization_preserves_random_logic(seed):
    src = _random_module(seed)
    try:
        synth = synthesize_module(parse_module(src))
    except Exception:
        return
    optimized = optimize(synth.aig).aig
    cec = check_aigs(synth.aig, optimized, max_exhaustive_inputs=12,
                     random_vectors=128)
    assert cec.equivalent, f"seed {seed} broke optimization:\n{src}"


# --------------------------------------------------------------------------
# Random mini-C programs: interpreter vs RISC-V core
# --------------------------------------------------------------------------


@pytest.mark.slow
@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_interpreter_and_core_agree_on_random_programs(seed):
    genome = random_genome(random.Random(seed), realistic=True)
    source = genome.render()
    program = cparse(source)
    interp = Machine(program, max_steps=5_000_000).call("main")
    stats = run_program(assemble(compile_program(program)))
    assert stats.return_value == interp.value, \
        f"seed {seed}: interp={interp.value} core={stats.return_value}"


# --------------------------------------------------------------------------
# Random AIG construction invariants
# --------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_aig_cleanup_preserves_outputs(seed):
    rng = random.Random(seed)
    aig = Aig()
    literals = [aig.add_input(f"i{k}") for k in range(4)]
    for _ in range(12):
        a = rng.choice(literals)
        b = rng.choice(literals)
        op = rng.randrange(3)
        if op == 0:
            literals.append(aig.and_(a, b))
        elif op == 1:
            literals.append(aig.or_(a, b))
        else:
            literals.append(aig.xor_(a, b))
    aig.add_output("y", literals[-1])
    aig.add_output("z", rng.choice(literals))
    cleaned = aig.cleanup()
    assert check_aigs(aig, cleaned).equivalent
    assert cleaned.num_ands <= aig.num_ands


# --------------------------------------------------------------------------
# Critic verdicts: pure functions of (candidate, seed) in every mode
# --------------------------------------------------------------------------


def _candidate_text(seed: int) -> str:
    """A random module, sometimes corrupted the way bad candidates are."""
    rng = random.Random(seed)
    src = _random_module(seed)
    roll = rng.random()
    if roll < 0.25:
        src = src.replace("assign y =", "assign y = 8'bx +", 1)
    elif roll < 0.45:
        src = src[: len(src) * 2 // 3]          # token-limit truncation
    elif roll < 0.6:
        src = src.replace("4'd", "4'h", 1) + "// 4'h3_wrong\n"
    return src


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_critic_verdict_is_pure_function_of_candidate_and_seed(seed):
    from repro.critic import Critic, JudgeClient

    text = _candidate_text(seed)
    first = Critic(flow="prop", seed=seed,
                   judge=JudgeClient(seed=seed)).review_source(text)
    again = Critic(flow="prop", seed=seed,
                   judge=JudgeClient(seed=seed)).review_source(text)
    assert first == again
    # Batch review order cannot change any verdict.
    other = _candidate_text(seed + 1)
    critic = Critic(flow="prop", seed=seed, judge=JudgeClient(seed=seed))
    assert critic.review([text, other]) == \
        list(reversed(critic.review([other, text])))


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_critic_verdicts_match_across_direct_service_parallel(seed):
    from concurrent.futures import ThreadPoolExecutor

    from repro.critic import Critic, JudgeClient
    from repro.service.broker import ModelBroker

    texts = [_candidate_text(seed + k) for k in range(4)]
    direct = Critic(flow="prop", seed=seed,
                    judge=JudgeClient(seed=seed)).review(texts)

    broker = ModelBroker()
    try:
        brokered_critic = Critic(flow="prop", seed=seed,
                                 judge=JudgeClient(seed=seed,
                                                   broker=broker))
        brokered = brokered_critic.review(texts)
    finally:
        broker.shutdown()

    parallel_critic = Critic(flow="prop", seed=seed,
                             judge=JudgeClient(seed=seed))
    with ThreadPoolExecutor(max_workers=4) as pool:
        parallel = list(pool.map(parallel_critic.review_source, texts))

    assert direct == brokered == parallel
