"""Loadgen tests: schedule determinism and harness accounting."""

from repro.loadgen import LoadConfig, build_schedule, run_load
from repro.loadgen.workload import FLOW_KINDS, LoadBackend, method_for
from repro.service import BrokerConfig


def _small(**overrides):
    base = dict(users=40, seed=3, duration_s=0.5, service_time_ms=2.0,
                request_timeout_s=1.0, time_scale=4.0)
    base.update(overrides)
    return LoadConfig(**base)


class TestSchedule:
    def test_schedule_is_a_pure_function_of_the_seed(self):
        cfg = _small()
        assert build_schedule(cfg) == build_schedule(cfg)
        assert build_schedule(cfg) != build_schedule(_small(seed=4))

    def test_schedule_is_time_sorted_and_within_duration(self):
        schedule = build_schedule(_small())
        times = [a.t for a in schedule]
        assert times == sorted(times)
        assert all(t >= 0.0 for t in times)
        assert schedule, "empty schedule"

    def test_arrivals_cover_tenants_and_flow_kinds(self):
        schedule = build_schedule(_small(users=200, duration_s=1.0))
        assert {a.flow for a in schedule} <= set(FLOW_KINDS)
        assert {a.kind for a in schedule} <= {"generate", "refine",
                                              "human_fix"}
        assert len({a.tenant for a in schedule}) > 1
        assert len({a.req_id for a in schedule}) == len(schedule)

    def test_hog_tenant_dominates_when_enabled(self):
        schedule = build_schedule(_small(users=200, duration_s=1.0))
        by_tenant: dict[str, int] = {}
        for a in schedule:
            by_tenant[a.tenant] = by_tenant.get(a.tenant, 0) + 1
        hog = max(by_tenant, key=by_tenant.get)
        others = [n for t, n in by_tenant.items() if t != hog]
        assert by_tenant[hog] > max(others)

    def test_method_for_covers_every_request_kind(self):
        backend = LoadBackend("gpt-4", _small())
        for kind in ("generate", "refine", "human_fix"):
            assert hasattr(backend, method_for(kind))


class TestHarness:
    def test_small_run_accounts_for_every_submission(self):
        cfg = _small()
        report = run_load(cfg, shards=2,
                          broker_config=BrokerConfig(
                              queue_capacity=32, max_concurrent=2,
                              request_timeout_s=1.0))
        assert report.stranded == 0
        assert report.requests == len(build_schedule(cfg))
        assert report.accounted() == report.requests
        assert report.ok > 0
        assert report.shards == 2
        total_per_tenant = sum(report.per_tenant_ok.values())
        assert total_per_tenant == report.ok

    def test_report_dict_round_trips_the_slo_fields(self):
        report = run_load(_small(users=10),
                          broker_config=BrokerConfig(
                              queue_capacity=32, request_timeout_s=1.0))
        data = report.as_dict()
        for key in ("p50_ms", "p95_ms", "p99_ms", "shed_rate",
                    "throughput_rps", "breaker_trips", "stranded"):
            assert key in data
        assert data["stranded"] == 0
