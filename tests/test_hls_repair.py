"""Tests for the four-stage HLS repair loop (Fig. 2)."""

import pytest

from repro.bench.workloads import REPAIR_WORKLOADS, repair_workload
from repro.hls import HlsRepairEngine, check_compatibility, cparse, repair_source
from repro.llm import SimulatedLLM


class TestRepairEngine:
    def test_malloc_workload_repaired(self):
        w = repair_workload("malloc_sum")
        result = repair_source(w.source, w.top, model="gpt-4", seed=1)
        assert result.success, result.report()
        assert "malloc" not in result.repaired_source
        assert result.equivalence is not None
        assert result.equivalence.equivalent \
            or result.equivalence.skipped_reason

    def test_printf_workload_repaired(self):
        w = repair_workload("debug_prints")
        result = repair_source(w.source, w.top, model="gpt-4", seed=1)
        assert result.success
        assert "printf" not in result.repaired_source

    def test_clean_kernel_passes_through(self):
        w = repair_workload("clean_already")
        result = repair_source(w.source, w.top, model="gpt-4", seed=0)
        assert result.success
        assert result.issues_found == []
        assert result.rounds == 1

    def test_issue_detection_includes_tool_visible(self):
        w = repair_workload("mixed_everything")
        result = repair_source(w.source, w.top, model="gpt-4", seed=0)
        found_codes = {i.code for i in result.issues_found}
        assert "HLS001" in found_codes and "HLS005" in found_codes

    def test_parse_failure_is_graceful(self):
        result = repair_source("int f( {", "f", seed=0)
        assert not result.success
        assert any("parse failed" in s.detail for s in result.log)

    def test_repaired_source_is_compilable(self):
        w = repair_workload("while_search")
        result = repair_source(w.source, w.top, model="gpt-4o", seed=5)
        cparse(result.repaired_source)  # must not raise

    def test_stage_log_has_all_stages(self):
        w = repair_workload("malloc_sum")
        result = repair_source(w.source, w.top, model="gpt-4", seed=1)
        stages = {s.stage for s in result.log}
        assert "preprocess" in stages
        assert "verify" in stages

    def test_ppa_optimization_runs_on_success(self):
        w = repair_workload("malloc_sum")
        result = repair_source(w.source, w.top, model="gpt-4", seed=1)
        if result.success:
            assert result.schedule_before is not None
            assert result.schedule_after is not None
            assert result.schedule_after.latency_cycles \
                <= result.schedule_before.latency_cycles

    def test_rag_beats_no_rag_in_aggregate(self):
        """The paper's core claim for stage 2: retrieved templates guide the
        repair better than parametric memory."""
        def success_count(use_rag):
            wins = 0
            for seed in range(4):
                for w in REPAIR_WORKLOADS:
                    if not w.expected_issue_codes:
                        continue
                    engine = HlsRepairEngine(
                        SimulatedLLM("chatgpt-3.5", seed=seed),
                        use_rag=use_rag, seed=seed, optimize_ppa=False)
                    if engine.repair(w.source, w.top).success:
                        wins += 1
            return wins

        assert success_count(True) > success_count(False)

    def test_weak_model_worse_than_strong(self):
        def rate(model):
            wins = 0
            for seed in range(3):
                for wid in ("malloc_sum", "debug_prints", "mixed_everything"):
                    w = repair_workload(wid)
                    engine = HlsRepairEngine(SimulatedLLM(model, seed=seed),
                                             seed=seed, optimize_ppa=False)
                    wins += engine.repair(w.source, w.top).success
            return wins

        assert rate("gpt-4o") >= rate("dave-gpt2")

    def test_deterministic_given_seed(self):
        w = repair_workload("malloc_sum")
        a = repair_source(w.source, w.top, model="gpt-4", seed=7)
        b = repair_source(w.source, w.top, model="gpt-4", seed=7)
        assert a.repaired_source == b.repaired_source
        assert a.success == b.success

    def test_latency_improvement_property(self):
        w = repair_workload("clean_already")
        result = repair_source(w.source, w.top, model="gpt-4o", seed=2)
        assert 0.0 <= result.latency_improvement <= 1.0


class TestWorkloadExpectations:
    @pytest.mark.parametrize("workload", REPAIR_WORKLOADS,
                             ids=lambda w: w.workload_id)
    def test_expected_issues_detected(self, workload):
        report = check_compatibility(cparse(workload.source), workload.top)
        found = {i.code for i in report.issues}
        for code in workload.expected_issue_codes:
            assert code in found, f"{workload.workload_id}: missing {code}"
