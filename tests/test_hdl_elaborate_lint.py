"""Tests for elaboration and lint."""

import pytest

from repro.hdl import ElaborationError, elaborate, lint_module, parse, parse_module
from repro.hdl.elaborate import eval_const
from repro.hdl import ast as A


class TestConstEval:
    def test_arithmetic(self):
        expr = parse_module(
            "module m; parameter P = (3 + 4) * 2; endmodule").parameters[0]
        assert eval_const(expr.default, {}) == 14

    def test_parameter_reference(self):
        m = parse_module("module m; parameter A = 4; parameter B = A + 1; endmodule")
        env = {}
        for p in m.parameters:
            env[p.name] = eval_const(p.default, env)
        assert env["B"] == 5

    def test_ternary(self):
        assert eval_const(A.Ternary(A.Number(32, 1), A.Number(32, 7),
                                    A.Number(32, 9)), {}) == 7

    def test_unknown_identifier_raises(self):
        with pytest.raises(ElaborationError):
            eval_const(A.Identifier("nope"), {})

    def test_x_literal_rejected(self):
        with pytest.raises(ElaborationError):
            eval_const(A.Number(4, 0, 0b1), {})


class TestElaboration:
    def test_signals_created_with_widths(self):
        design = elaborate(parse(
            "module m(input [7:0] a, output [3:0] y); assign y = a[3:0]; "
            "endmodule"), "m")
        assert design.signals["a"].width == 8
        assert design.signals["y"].width == 4

    def test_parameter_override_changes_width(self):
        design = elaborate(parse("""
module sub #(parameter W = 2)(input [W-1:0] a, output [W-1:0] y);
  assign y = a;
endmodule
module top(input [7:0] a, output [7:0] y);
  sub #(.W(8)) u(.a(a), .y(y));
endmodule"""), "top")
        assert design.signals["u.a"].width == 8

    def test_unknown_parameter_override(self):
        with pytest.raises(ElaborationError):
            elaborate(parse("""
module sub(input a); endmodule
module top(input a); sub #(.NOPE(1)) u(.a(a)); endmodule"""), "top")

    def test_unknown_module_instance(self):
        with pytest.raises(ElaborationError):
            elaborate(parse("module top; ghost u(); endmodule"), "top")

    def test_missing_top(self):
        with pytest.raises(ElaborationError):
            elaborate(parse("module m; endmodule"), "other")

    def test_port_without_direction(self):
        with pytest.raises(ElaborationError):
            elaborate(parse("module m(a); wire a; endmodule"), "m")

    def test_inout_rejected(self):
        with pytest.raises(ElaborationError):
            elaborate(parse("module m(inout a); endmodule"), "m")

    def test_nonzero_lsb_rejected(self):
        with pytest.raises(ElaborationError):
            elaborate(parse("module m(input [7:4] a); endmodule"), "m")

    def test_top_ports_marked(self):
        design = elaborate(parse(
            "module m(input a, output y); assign y = a; endmodule"), "m")
        assert design.signals["a"].is_port
        assert design.signals["a"].direction == "input"


class TestLint:
    def _warnings(self, src):
        return [w.code for w in lint_module(parse_module(src))]

    def test_clean_module(self):
        codes = self._warnings(
            "module m(input a, output y); assign y = ~a; endmodule")
        assert codes == []

    def test_undeclared_identifier(self):
        codes = self._warnings(
            "module m(output y); assign y = ghost; endmodule")
        assert "LINT-UNDECL" in codes

    def test_multiple_drivers(self):
        codes = self._warnings("""
module m(input a, input b, output y);
  assign y = a;
  assign y = b;
endmodule""")
        assert "LINT-MULTIDRIVE" in codes

    def test_blocking_in_clocked(self):
        codes = self._warnings("""
module m(input clk, input d, output reg q);
  always @(posedge clk) q = d;
endmodule""")
        assert "LINT-BLOCKSEQ" in codes

    def test_nonblocking_in_comb(self):
        codes = self._warnings("""
module m(input d, output reg q);
  always @(*) q <= d;
endmodule""")
        assert "LINT-NBACOMB" in codes

    def test_latch_inference(self):
        codes = self._warnings("""
module m(input s, input d, output reg q);
  always @(*) begin
    if (s) q = d;
  end
endmodule""")
        assert "LINT-LATCH" in codes

    def test_case_without_default_latches(self):
        codes = self._warnings("""
module m(input [1:0] s, output reg q);
  always @(*) begin
    case (s)
      2'd0: q = 1;
      2'd1: q = 0;
    endcase
  end
endmodule""")
        assert "LINT-LATCH" in codes

    def test_full_if_else_no_latch(self):
        codes = self._warnings("""
module m(input s, input d, output reg q);
  always @(*) begin
    if (s) q = d;
    else q = ~d;
  end
endmodule""")
        assert "LINT-LATCH" not in codes

    def test_clock_generator_not_latch(self):
        codes = self._warnings("""
module tb;
  reg clk;
  initial clk = 0;
  always #5 clk = ~clk;
endmodule""")
        assert "LINT-LATCH" not in codes

    def test_unused_net(self):
        codes = self._warnings(
            "module m(input a, output y); wire dead; assign y = a; endmodule")
        assert "LINT-UNUSED" in codes

    def test_unread_input(self):
        codes = self._warnings(
            "module m(input a, input b, output y); assign y = a; endmodule")
        assert "LINT-UNUSEDIN" in codes

    def test_undriven_output(self):
        codes = self._warnings("module m(input a, output y); endmodule")
        assert "LINT-UNDRIVEN" in codes

    def test_width_mismatch(self):
        codes = self._warnings("""
module m(input [3:0] a, output [7:0] y);
  assign y = a;
endmodule""")
        assert "LINT-WIDTH" in codes
