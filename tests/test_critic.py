"""Critic stage: verdicts, rules, judge, engine wiring, flow integration.

The calibration contract (zero false-accepts on the labeled corpus, zero
false-rejects on the references) lives in ``test_critic_corpus.py``;
this file covers the machinery around it — the verdict algebra, the
judge's determinism across the broker seam, the ``RefinementEngine``
hook semantics, the per-flow wiring under ``REPRO_CRITIC=1``, and the
satellite fix that threads lint warnings back into regeneration.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.bench.problems import get_problem
from repro.config import get_settings
from repro.critic import (ACCEPT, Critic, CriticFailure, JudgeClient,
                          SimulatedJudge, Verdict, resolve_critic,
                          validate_assertion, validate_expectation,
                          validate_rtl, verdicts_feedback)
from repro.critic.verdict import TAX_JUDGE, TAX_LINT, TAX_WIDTH

CLEAN_RTL = """
module mux2(input wire sel, input wire a, input wire b, output wire y);
  assign y = sel ? a : b;
endmodule
"""

BAD_WIDTH_RTL = """
module lanes(input wire sel, input wire [7:0] lane_a,
             output wire [3:0] dout);
  assign dout = sel ? lane_a : 4'hF;
endmodule
"""

CORRUPT_TEXT = "assign y = 4'h3_wrong;"


def _fail(tax=TAX_WIDTH, rule="ternary-width", detail="d"):
    return CriticFailure(tax, rule, detail)


class TestVerdict:
    def test_accept_singleton(self):
        assert ACCEPT.ok
        assert ACCEPT.labels() == ()
        assert ACCEPT.feedback() == ""

    def test_failure_str(self):
        assert str(_fail()) == "[width] ternary-width: d"

    def test_labels_dedupe_first_hit_order(self):
        verdict = Verdict(ok=False, failures=(
            _fail(TAX_WIDTH), _fail(TAX_LINT), _fail(TAX_WIDTH)))
        assert verdict.labels() == (TAX_WIDTH, TAX_LINT)

    def test_feedback_lists_failures(self):
        verdict = Verdict(ok=False, failures=(_fail(),))
        text = verdict.feedback()
        assert "CRITIC" in text
        assert "[width] ternary-width: d" in text

    def test_merged_with_combines_stages(self):
        rules = Verdict(ok=False, failures=(_fail(),))
        judge = Verdict(ok=False, stage="judge",
                        failures=(_fail(TAX_JUDGE, "llm-judge"),))
        merged = rules.merged_with(judge)
        assert merged.stage == "rules+judge"
        assert not merged.ok
        assert len(merged.failures) == 2

    def test_summary_shape(self):
        summary = Verdict(ok=False, failures=(_fail(),)).summary()
        assert summary == {"ok": False, "stage": "rules",
                           "labels": [TAX_WIDTH]}

    def test_verdicts_feedback_counts_and_limits(self):
        verdicts = [ACCEPT] + [Verdict(ok=False, failures=(_fail(),))
                               for _ in range(4)]
        text = verdicts_feedback(verdicts)
        assert "4 of 5" in text
        # Only the first three rejected candidates are detailed.
        assert text.count("ternary-width") == 3

    def test_verdicts_feedback_empty_when_all_ok(self):
        assert verdicts_feedback([ACCEPT, ACCEPT]) == ""


class TestRules:
    def test_clean_module_accepted(self):
        assert validate_rtl(CLEAN_RTL).ok

    def test_module_name_filter(self):
        source = CLEAN_RTL + BAD_WIDTH_RTL
        assert validate_rtl(source, "mux2").ok
        assert not validate_rtl(source, "lanes").ok
        assert not validate_rtl(source).ok

    def test_dead_reset_with_else_accepted(self):
        source = """
        module ctr(input wire clk, input wire rst, output reg [3:0] q);
          always @(posedge clk) begin
            if (rst) q <= 4'd0;
            else q <= q + 4'd1;
          end
        endmodule
        """
        assert validate_rtl(source).ok

    def test_narrow_compare_not_a_trojan(self):
        # 2-bit selector mux: a decode, not a rare trigger.
        source = """
        module dec(input wire [1:0] sel, input wire [3:0] a,
                   output wire [3:0] y);
          assign y = (sel == 2'd3) ? (a ^ 4'h1) : a;
        endmodule
        """
        assert validate_rtl(source).ok

    def test_expectation_literals(self):
        assert validate_expectation("4'hf") is None
        assert validate_expectation("12") is None
        assert validate_expectation("x") is None
        bad = validate_expectation("4'h3_wrong")
        assert bad is not None and bad.rule == "malformed-expectation"

    def test_assertion_vacuity(self):
        verdict = validate_assertion({}, "4'h3")
        assert not verdict.ok
        assert any(f.rule == "vacuous-assertion" for f in verdict.failures)
        assert validate_assertion({"a": 1}, "4'h3").ok


class TestJudge:
    def test_clean_text_accepted_at_every_seed(self):
        # No smells: score is pure noise, capped below the threshold.
        for seed in range(16):
            assert SimulatedJudge(seed).judge(CLEAN_RTL).ok

    def test_corrupt_literal_rejected_at_every_seed(self):
        # The corrupt-literal smell alone clears the threshold.
        for seed in range(16):
            verdict = SimulatedJudge(seed).judge(CORRUPT_TEXT)
            assert not verdict.ok
            assert verdict.labels() == (TAX_JUDGE,)

    def test_verdict_is_pure_function_of_text_and_seed(self):
        texts = [CLEAN_RTL, CORRUPT_TEXT, "wire [7:0] w = 8'bx;"]
        for seed in (0, 7):
            first = [SimulatedJudge(seed).judge(t) for t in texts]
            again = [SimulatedJudge(seed).judge(t) for t in reversed(texts)]
            assert first == list(reversed(again))

    def test_client_direct_matches_broker(self, monkeypatch):
        from repro.service import reset_default_broker
        texts = [CLEAN_RTL, CORRUPT_TEXT, "x" * 40]
        direct = [JudgeClient(seed=3).judge(t) for t in texts]
        monkeypatch.setenv("REPRO_SERVICE", "1")
        reset_default_broker()
        try:
            from repro.critic import resolve_judge
            client = resolve_judge(3)
            assert client.broker is not None
            brokered = [client.judge(t) for t in texts]
        finally:
            reset_default_broker()
        assert direct == brokered


class TestConfigAndResolve:
    def test_critic_off_by_default(self):
        settings = get_settings()
        assert settings.critic_enabled is False
        assert settings.critic_judge_enabled is False
        assert resolve_critic("autochip", seed=0) is None

    def test_critic_resolves_when_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_CRITIC", "1")
        critic = resolve_critic("autochip", seed=5)
        assert isinstance(critic, Critic)
        assert critic.judge is None
        assert critic.seed == 5

    def test_judge_resolves_when_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_CRITIC", "1")
        monkeypatch.setenv("REPRO_CRITIC_JUDGE", "1")
        critic = resolve_critic("vrank", seed=2)
        assert isinstance(critic.judge, JudgeClient)
        assert critic.judge.seed == 2

    def test_snapshot_records_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_CRITIC", "1")
        snap = get_settings().snapshot()
        assert snap["critic"] is True
        assert snap["critic_judge"] is False


class TestCriticReview:
    def test_review_counts_metrics(self):
        obs.reset_metrics()
        critic = Critic(flow="test", seed=0)
        verdicts = critic.review([CLEAN_RTL, BAD_WIDTH_RTL])
        assert [v.ok for v in verdicts] == [True, False]
        metrics = obs.get_metrics()
        assert metrics.counter("critic.candidates").value == 2
        assert metrics.counter("critic.rejected").value == 1
        assert metrics.counter("critic.flag.width").value == 1

    def test_judge_only_sees_rule_clean_candidates(self):
        obs.reset_metrics()
        critic = Critic(flow="test", seed=0, judge=JudgeClient(seed=0))
        critic.review([CLEAN_RTL, BAD_WIDTH_RTL])
        # One judge call: the rule-rejected candidate never reaches it.
        assert obs.get_metrics().counter("critic.judge_calls").value == 1

    def test_engine_hook_extracts_text(self):
        class Cand:
            def __init__(self, text):
                self.text = text

        hook = Critic(flow="test").engine_hook()
        verdicts = hook(None, [Cand(CLEAN_RTL), Cand(BAD_WIDTH_RTL)])
        assert [v.ok for v in verdicts] == [True, False]


class _Cand:
    def __init__(self, text):
        self.text = text


def _mini_engine(rounds_of_texts, critic_hook, seen, **kwargs):
    from repro.engine.kernel import RefinementEngine, rank_by_score
    rounds = iter(rounds_of_texts)

    def candidates(state):
        return [_Cand(t) for t in next(rounds)]

    def evaluate(state, cands):
        seen.append(len(cands))
        return [1.0] * len(cands)

    def select(state, cands, outcomes):
        return rank_by_score(cands, outcomes, score=lambda o: o)

    return RefinementEngine(candidates=candidates, evaluate=evaluate,
                            select=select,
                            max_rounds=len(rounds_of_texts),
                            critic=critic_hook, **kwargs)


class TestEngineWiring:
    def test_rejected_candidates_filtered_before_evaluate(self):
        seen = []
        critic = Critic(flow="test")
        engine = _mini_engine([[CLEAN_RTL, BAD_WIDTH_RTL]],
                              critic.engine_hook(), seen)
        record = engine.run()
        assert seen == [1]
        assert record.critic_reviews == 2
        assert record.critic_rejections == 1
        assert record.critic_verdicts == [{
            "round": 1,
            "verdicts": [ACCEPT.summary(),
                         {"ok": False, "stage": "rules",
                          "labels": [TAX_WIDTH]}]}]

    def test_all_rejected_keeps_every_candidate(self):
        seen = []
        critic = Critic(flow="test")
        engine = _mini_engine([[BAD_WIDTH_RTL, BAD_WIDTH_RTL]],
                              critic.engine_hook(), seen)
        record = engine.run()
        assert seen == [2]
        assert record.critic_rejections == 2

    def test_critic_filter_false_is_annotate_only(self):
        seen = []
        critic = Critic(flow="test")
        engine = _mini_engine([[CLEAN_RTL, BAD_WIDTH_RTL]],
                              critic.engine_hook(), seen,
                              critic_filter=False)
        record = engine.run()
        assert seen == [2]
        assert record.critic_rejections == 1

    def test_rejection_feedback_reaches_next_round(self):
        seen = []
        critic = Critic(flow="test")
        engine = _mini_engine([[BAD_WIDTH_RTL], [CLEAN_RTL]],
                              critic.engine_hook(), seen)
        record = engine.run()
        # Round 1's log shows the feedback it consumed: the repair
        # context appended after round 0's rejection.
        assert "CRITIC" in record.rounds[1].feedback_used

    def test_no_critic_is_pre_critic_path(self):
        seen = []
        engine = _mini_engine([[CLEAN_RTL, BAD_WIDTH_RTL]], None, seen)
        record = engine.run()
        assert seen == [2]
        assert record.critic_reviews == 0
        assert record.critic_verdicts == []


class TestFlowsUnderCritic:
    """Every flow completes with REPRO_CRITIC=1 and reviews candidates."""

    def test_autochip_reviews_candidates(self, monkeypatch):
        from repro.flows.autochip import run_autochip
        monkeypatch.setenv("REPRO_CRITIC", "1")
        result = run_autochip(get_problem("c1_mux2"), "gpt-4o",
                              k=2, depth=1, seed=0)
        assert result.run_record.critic_reviews >= 2

    def test_vrank_reviews_candidates(self, monkeypatch):
        from repro.flows.vrank import vrank
        monkeypatch.setenv("REPRO_CRITIC", "1")
        result = vrank(get_problem("c1_mux2"), "gpt-4o",
                       n_candidates=3, seed=0)
        assert result.run_record.critic_reviews >= 3

    def test_hierarchical_completes(self, monkeypatch):
        from repro.flows.hierarchical import hierarchical_sweep
        monkeypatch.setenv("REPRO_CRITIC", "1")
        sweep = hierarchical_sweep([get_problem("c2_gray")],
                                   "cl-verilog-34b", seeds=(0,))
        assert sweep.results

    def test_structured_completes(self, monkeypatch):
        from repro.flows.structured import run_structured_sweep
        monkeypatch.setenv("REPRO_CRITIC", "1")
        sweep = run_structured_sweep("gpt-4", [get_problem("c2_gray")],
                                     seeds=(0,))
        assert sweep.results

    def test_crosscheck_completes(self, monkeypatch):
        from repro.flows.crosscheck import guided_debug_sweep
        monkeypatch.setenv("REPRO_CRITIC", "1")
        sweep = guided_debug_sweep([get_problem("c3_alu")],
                                   "chatgpt-3.5", seeds=(0,))
        assert sweep.results

    def test_chipchat_completes_and_critic_turns_are_gated(self,
                                                           monkeypatch):
        from repro.flows.chipchat import run_chipchat_tapeout
        off = run_chipchat_tapeout([get_problem("c2_adder8")],
                                   "chatgpt-3.5", seed=0)
        for result in off.results:
            assert all(t.role != "critic" for t in result.transcript)
        monkeypatch.setenv("REPRO_CRITIC", "1")
        on = run_chipchat_tapeout([get_problem("c2_adder8")],
                                  "chatgpt-3.5", seed=0)
        assert on.results

    def test_assertgen_screens_assertions(self, monkeypatch):
        from repro.flows.assertgen import assertion_sweep
        monkeypatch.setenv("REPRO_CRITIC", "1")
        sweep = assertion_sweep([get_problem("c2_gray")], "gpt-4",
                                seeds=(0,))
        assert sweep.results

    def test_autobench_screens_testbench(self, monkeypatch):
        from repro.flows.autobench import testbench_quality
        monkeypatch.setenv("REPRO_CRITIC", "1")
        report = testbench_quality(get_problem("c2_gray"), "chatgpt-3.5",
                                   seed=0)
        assert report is not None

    def test_judge_mode_still_completes(self, monkeypatch):
        from repro.flows.autochip import run_autochip
        monkeypatch.setenv("REPRO_CRITIC", "1")
        monkeypatch.setenv("REPRO_CRITIC_JUDGE", "1")
        result = run_autochip(get_problem("c1_mux2"), "gpt-4o",
                              k=2, depth=1, seed=0)
        assert result.run_record.critic_reviews >= 2


class TestSecurityCritic:
    def test_detect_with_critic_flags_inserted_trojan(self):
        from repro.flows.security import detect_with_critic, insert_trojan
        problem = get_problem("c2_gray")
        design = insert_trojan(problem, seed=0)
        assert design is not None
        report = detect_with_critic(problem, design)
        assert report.detector == "critic"
        assert report.detected

    def test_sweep_detector_set_is_gated(self, monkeypatch):
        from repro.flows.security import detection_sweep
        off = detection_sweep([get_problem("c2_gray")], seeds=(0,),
                              jobs=1)
        assert "critic" not in off
        monkeypatch.setenv("REPRO_CRITIC", "1")
        on = detection_sweep([get_problem("c2_gray")], seeds=(0,), jobs=1)
        assert on["critic"] == 1.0
        # The simulation detectors are untouched by the extra column.
        assert {k: v for k, v in on.items() if k != "critic"} == off


class TestScreens:
    def test_screen_testbench_drops_malformed_rows(self):
        from repro.flows.autobench import GeneratedTestbench
        tb = GeneratedTestbench(
            problem_id="p", model="m", clk=None, reset=None,
            vectors=[{"a": 0}, {"a": 1}, {"a": 2}],
            expectations=[{"y": "1'h0"}, {"y": "1'h1_wrong"}, {"y": "x"}])
        critic = Critic(flow="autobench")
        tb, dropped = critic.screen_testbench(tb)
        assert dropped == 1
        assert tb.vectors == [{"a": 0}, {"a": 2}]
        assert tb.expectations == [{"y": "1'h0"}, {"y": "x"}]

    def test_screen_assertions_rejects_bad_ones(self):
        from repro.flows.assertgen import Assertion
        good = Assertion("point", (("a", 1),), "y", "1'h1", "ok")
        vacuous = Assertion("point", (), "y", "1'h1", "no stimulus")
        corrupt = Assertion("point", (("a", 0),), "y", "1'h0_wrong",
                            "corrupted")
        critic = Critic(flow="assertgen")
        kept, rejected = critic.screen_assertions([good, vacuous, corrupt])
        assert kept == [good]
        assert [a for a, _ in rejected] == [vacuous, corrupt]


class TestCriticReport:
    def test_critic_table_renders_counters(self):
        from repro.obs.report import critic_table, render
        records = [{"type": "metrics",
                    "counters": {"critic.candidates": 6,
                                 "critic.rejected": 2,
                                 "critic.flag.width": 1,
                                 "engine.generations": 6}}]
        table = critic_table(records)
        assert "critic.candidates" in table
        assert "critic.flag.width" in table
        assert "engine.generations" not in table
        assert "critic.rejected" in render(records)

    def test_critic_table_empty_without_critic_metrics(self):
        from repro.obs.report import critic_table
        assert critic_table([{"type": "metrics",
                              "counters": {"engine.generations": 3}}]) == ""
        assert critic_table([]) == ""


class TestAgentLintThreading:
    """Satellite fix: lint warnings reach the regeneration prompt."""

    def _capture(self, monkeypatch):
        from repro.flows import autochip as mod
        captured = []
        orig = mod.AutoChip.run

        def spy(self, problem, budget=None, *, initial_feedback=""):
            captured.append(initial_feedback)
            return orig(self, problem, budget,
                        initial_feedback=initial_feedback)

        monkeypatch.setattr(mod.AutoChip, "run", spy)
        return captured

    def _run_stage(self, monkeypatch, warnings, enable_feedback=True):
        from repro.core.stages import RtlGenerationStage, StageContext
        from repro.core.state import DesignState
        from repro.service.client import resolve_client
        captured = self._capture(monkeypatch)
        problem = get_problem("c1_mux2")
        state = DesignState(spec=problem.spec)
        state.lint_warnings = warnings
        ctx = StageContext(llm=resolve_client("chatgpt-3.5", seed=0),
                           problem=problem, autochip_k=1, autochip_depth=1,
                           enable_feedback=enable_feedback)
        RtlGenerationStage().run(state, ctx)
        return captured

    def test_lint_warnings_thread_into_regeneration(self, monkeypatch):
        captured = self._run_stage(
            monkeypatch, ["LINT-LATCH: 'q' not driven on every path"])
        assert len(captured) == 1
        assert "static analysis of the previous attempt" in captured[0]
        assert "LINT-LATCH" in captured[0]

    def test_first_pass_prompt_is_unchanged(self, monkeypatch):
        assert self._run_stage(monkeypatch, []) == [""]

    def test_feedback_off_suppresses_threading(self, monkeypatch):
        captured = self._run_stage(
            monkeypatch, ["LINT-LATCH: stale"], enable_feedback=False)
        assert captured == [""]

    def test_feedback_changes_the_generation(self):
        from repro.flows.autochip import AutoChip, AutoChipConfig
        from repro.service.client import resolve_client
        problem = get_problem("c4_seqdet")
        base = AutoChip(resolve_client("chatgpt-3.5", seed=5),
                        AutoChipConfig(k=1, depth=1)).run(problem)
        fed = AutoChip(resolve_client("chatgpt-3.5", seed=5),
                       AutoChipConfig(k=1, depth=1)).run(
            problem, initial_feedback="static analysis of the previous "
            "attempt reported:\nLINT-LATCH: 'state' not driven")
        assert base.best_source != fed.best_source

    def test_reopen_convergence_does_not_regress(self):
        # The pre-fix weak-model scenario: reopens stay bounded and the
        # run completes (same contract as test_feedback_reopens_rtl_stage,
        # now with lint findings threaded into the reopened prompt).
        from repro.core.agent import AgentConfig, EdaAgent
        agent = EdaAgent(AgentConfig(model="chatgpt-3.5", autochip_k=1,
                                     autochip_depth=1), seed=3)
        report = agent.run(get_problem("c4_seqdet"))
        assert 0 <= report.reopens <= agent.config.max_reopens
