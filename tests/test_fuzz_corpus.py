"""Corpus bridge: every ``tests/corpus/*.v`` entry is a tier-1 regression.

Entries come from two places — hand-seeded edge cases (``oracle=seed-corpus``
in the header) and shrunk fuzzer findings written by
:func:`repro.fuzz.runner.write_corpus_entry`.  Each entry must:

* survive a parse → unparse → reparse round trip;
* compile and simulate to completion with zero FAIL/ERROR checks;
* stay equivalent to its synthesized netlist when marked ``// synth:``;
* for fuzzer findings, no longer diverge on the oracle that found it
  (the finding is committed *after* the underlying bug is fixed).
"""

from __future__ import annotations

import glob
import os
import re

import pytest

from repro.fuzz import ORACLES, TB_SEPARATOR, generate_case
from repro.fuzz.grammar import FuzzCase
from repro.hdl import parse, run_testbench, strip_locations, unparse
from repro.synth.cec import check_against_simulation
from repro.synth.flatten import synthesize_source

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
ENTRIES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.v")))


def _meta(text: str) -> dict:
    meta = {
        "top": re.search(r"\btop=(\w+)", text).group(1),
        "oracle": re.search(r"\boracle=([\w-]+)", text).group(1),
        "expect": re.search(r"// expect: (\w+)", text).group(1),
    }
    synth = re.search(r"// synth: (\w+)", text)
    meta["synth"] = synth.group(1) if synth else None
    return meta


def _strip_comments(text: str) -> str:
    return "\n".join(line for line in text.splitlines()
                     if not line.lstrip().startswith("//")) + "\n"


def test_corpus_is_seeded():
    assert len(ENTRIES) >= 5, "corpus must keep its hand-picked edge cases"


@pytest.mark.parametrize(
    "path", ENTRIES, ids=[os.path.basename(p) for p in ENTRIES])
def test_corpus_entry(path):
    text = open(path, encoding="utf-8").read()
    meta = _meta(text)
    source = _strip_comments(text)

    # Round-trip stability.
    first = strip_locations(parse(source))
    rendered = unparse(first)
    assert strip_locations(parse(rendered)) == first, \
        f"{path}: parse -> unparse -> reparse changed the AST"
    assert unparse(strip_locations(parse(rendered))) == rendered

    # Simulation completes cleanly and every embedded check passes.
    result = run_testbench(source, meta["top"], max_time=50_000, seed=1)
    assert result.compiled, f"{path}: {result.compile_error}"
    assert not result.runtime_error, f"{path}: {result.runtime_error}"
    assert result.finished, f"{path}: testbench never hit $finish"
    assert result.fail_count == 0 and result.error_count == 0, \
        f"{path}: {result.output}"
    assert result.pass_count > 0, f"{path}: no PASS checks ran"

    # Synthesis equivalence where the entry vouches for it.
    if meta["synth"]:
        synth = synthesize_source(source, meta["synth"])
        module = parse(source).modules[meta["synth"]]
        cec = check_against_simulation(synth, source, module,
                                       vectors=24, seed=7)
        assert cec.equivalent, \
            (f"{path}: synthesized netlist diverges on "
             f"{cec.mismatched_outputs} at {cec.counterexample}")


@pytest.mark.parametrize(
    "path",
    [p for p in ENTRIES if TB_SEPARATOR.strip() in open(p).read()],
    ids=lambda p: os.path.basename(p))
def test_fuzzer_finding_is_fixed(path):
    """A shrunk finding, once committed, must no longer diverge."""
    text = open(path, encoding="utf-8").read()
    meta = _meta(text)
    if meta["oracle"] not in ORACLES:
        pytest.skip("hand-seeded entry, no originating oracle")
    raw_dut, raw_tb = text.split(TB_SEPARATOR, 1)
    case = FuzzCase(index=0, seed=0, campaign_seed=0,
                    dut_name=re.search(r"\bdut=(\w+)", text).group(1),
                    dut_source=_strip_comments(raw_dut),
                    tb_source=_strip_comments(raw_tb), top=meta["top"])
    report = ORACLES[meta["oracle"]](case)
    assert not report.divergence, \
        f"{path}: committed finding still diverges: {report.detail}"


def test_replay_reproduces_generated_entries():
    """Any generated corpus entry must be reconstructible from its seed."""
    for path in ENTRIES:
        text = open(path, encoding="utf-8").read()
        match = re.search(
            r"--seed (\d+) --replay (\d+)", text)
        if match is None:
            continue  # hand-seeded
        seed, index = int(match.group(1)), int(match.group(2))
        case = generate_case(seed, index)
        assert case.index == index and case.campaign_seed == seed
