"""Shared fixtures: environment isolation for the whole suite.

Several tests toggle ``REPRO_*`` environment variables (cache, jobs,
tracing, service mode) directly; without isolation, a test that forgets to
restore a knob silently changes the behaviour — and the cache keys — of
every test that runs after it.  The autouse fixture below snapshots
``os.environ`` before each test, restores it afterwards, and resets the
one-shot warning dedupe in :mod:`repro.config` so warning-emission tests
see a clean slate regardless of ordering.
"""

from __future__ import annotations

import os

import pytest

from repro.config import reset_warned_values


@pytest.fixture(autouse=True)
def _isolate_environ():
    saved = dict(os.environ)
    reset_warned_values()
    yield
    for key in set(os.environ) - set(saved):
        del os.environ[key]
    for key, value in saved.items():
        if os.environ.get(key) != value:
            os.environ[key] = value
