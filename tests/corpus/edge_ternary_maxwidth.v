// fuzz finding: oracle=seed-corpus kind=hand-picked
// campaign seed=0 case=0 top=tb dut=edge_dut
// replay: (hand-seeded edge case, not generated)
// detail: ternary result width is the max of both branch widths; the
//   narrow branch must zero-extend (regression for the PR 1 simulator
//   ternary-width fix that aligned simulation with synthesis)
// expect: pass
// synth: edge_dut
module edge_dut(input sel, input [3:0] a, output [7:0] y, output [8:0] z);
  assign y = sel ? a : 8'hf0;
  assign z = sel ? {1'b1, 8'h00} : (a + 4'hf);
endmodule
// --- testbench ---
module tb();
  reg sel;
  reg [3:0] a;
  wire [7:0] y;
  wire [8:0] z;
  edge_dut u0(.sel(sel), .a(a), .y(y), .z(z));
  initial begin
    sel = 1;
    a = 4'hf;
    #1;
    if (y == 8'h0f) $display("PASS: narrow branch zero-extends to max width");
    else $display("FAIL: y=%b", y);
    if (z == 9'h100) $display("PASS: 9-bit branch selected whole");
    else $display("FAIL: z=%b", z);
    sel = 0;
    #1;
    if (y == 8'hf0) $display("PASS: wide branch passes through");
    else $display("FAIL: y=%b", y);
    if (z == 9'h01e) $display("PASS: add carry survives in 9-bit ternary");
    else $display("FAIL: z=%b", z);
    $finish;
  end
endmodule
