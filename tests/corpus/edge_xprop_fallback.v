// fuzz finding: oracle=compiled kind=hand-picked
// campaign seed=0 case=6 top=tb dut=xprop_mix
// replay: (hand-seeded edge case, not generated)
// detail: partial-X vectors through the compiled fast path — an undriven
//   register contributes X bits into a concat while a masked AND keeps its
//   known-zero bits defined; the compiled engine's (value, xmask) planes
//   must reproduce the event engine bit-for-bit, including %b rendering
//   of mixed known/x vectors
// expect: pass
module xprop_mix(input [3:0] a, input sel, output [7:0] y, output [3:0] m);
  reg [3:0] u;
  assign m = a & 4'b0011;
  assign y = {u[1:0], a, sel ? 2'b10 : u[3:2]};
endmodule
// --- testbench ---
module tb();
  reg [3:0] a;
  reg sel;
  wire [7:0] y;
  wire [3:0] m;
  xprop_mix u0(.a(a), .sel(sel), .y(y), .m(m));
  initial begin
    a = 4'hf;
    sel = 0;
    #1;
    $display("m=%b y=%b", m, y);
    if (m == 4'b0011) $display("PASS: masked AND stays defined");
    else $display("FAIL: masked AND lost definedness m=%b", m);
    sel = 1;
    #1;
    $display("y=%b", y);
    if (y[1:0] == 2'b10) $display("PASS: ternary selects defined arm");
    else $display("FAIL: y=%b", y);
    $finish;
  end
endmodule
