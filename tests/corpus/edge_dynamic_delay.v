// fuzz finding: oracle=seed-corpus kind=hand-picked
// campaign seed=0 case=7 top=tb dut=slow_toggle
// replay: (hand-seeded edge case, not generated)
// detail: dynamic delay amount (#d where d is a register) — outside the
//   compiled engine's subset, so engine auto-selection must fall back to
//   the event-driven simulator and still complete the testbench; pins the
//   selector's ineligible path under REPRO_SIM_ENGINE=compiled
// expect: pass
module slow_toggle(output reg q);
  reg [3:0] d = 2;
  initial q = 0;
  always begin
    #d q = ~q;
  end
endmodule
module tb();
  wire q;
  slow_toggle u0(.q(q));
  initial begin
    #3;
    if (q == 1'b1) $display("PASS: toggled at t=2");
    else $display("FAIL: q=%b at t=3", q);
    #2;
    if (q == 1'b0) $display("PASS: toggled back at t=4");
    else $display("FAIL: q=%b at t=5", q);
    $finish;
  end
endmodule
