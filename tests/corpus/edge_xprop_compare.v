// fuzz finding: oracle=seed-corpus kind=hand-picked
// campaign seed=0 case=3 top=tb dut=edge_dut
// replay: (hand-seeded edge case, not generated)
// detail: X propagation through comparison — comparing an uninitialized
//   register yields X, an if() on that X must take the else path, and the
//   X must survive a ternary select into the output display
// expect: pass
module edge_dut(input [3:0] a, output [3:0] y, output eq);
  reg [3:0] u;
  assign eq = (u == a);
  assign y = (u == a) ? 4'h1 : u;
endmodule
// --- testbench ---
module tb();
  reg [3:0] a;
  wire [3:0] y;
  wire eq;
  edge_dut u0(.a(a), .y(y), .eq(eq));
  initial begin
    a = 4'h0;
    #1;
    $display("eq=%b y=%b", eq, y);
    if (eq == 1'b1) $display("FAIL: X compare reported true");
    else $display("PASS: X compare did not report true");
    $finish;
  end
endmodule
