// critic corpus: taxonomy=vacuity rule=self-compare
// A "parity check" that compares the data bus against itself — the flag
// is constant 1 and the check can never fire.  A classic LLM slip when
// the spec says "compare data against expected".  Label: `vacuity`.
module parity_ok(input wire [7:0] data, output wire ok);
  assign ok = (data == data);
endmodule
