// critic corpus: taxonomy=trojan rule=rare-trigger-mux
// The repro.flows.security insertion shape: a checksum unit whose output
// is silently flipped when the data bus hits one magic 8-bit value.
// Directed testbenches are blind to the trigger; the critic's structural
// rule must reject with label `trojan`.
module checksum8(input wire [7:0] din, input wire [7:0] key,
                 output wire [7:0] csum);
  wire [7:0] csum_pre;
  assign csum_pre = din ^ key;
  assign csum = (din == 8'd173) ? (csum_pre ^ 1) : csum_pre;
endmodule
