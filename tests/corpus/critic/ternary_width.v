// critic corpus: taxonomy=width rule=ternary-width
// A plausible byte-lane selector whose fallback arm is half the width of
// the selected lane — silently zero-extended in simulation, a synthesis
// surprise on real tools.  The critic must reject it with label `width`.
module lane_select(input wire sel, input wire [7:0] lane_a,
                   output wire [7:0] dout);
  assign dout = sel ? lane_a : 4'hF;
endmodule
