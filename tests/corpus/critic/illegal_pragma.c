// critic corpus: taxonomy=pragma rule=illegal-pragma
// HLS kernel using a vendor-specific latency pragma that is outside the
// synthesizable subset this repo's HLS flow accepts (pipeline / unroll /
// array_partition / inline / dataflow / interface / loop_tripcount).
// The critic must reject with label `pragma`.
int accumulate(int data[64]) {
  int acc = 0;
  for (int i = 0; i < 64; i++) {
#pragma HLS occurrence cycle=4
#pragma HLS pipeline II=1
    acc += data[i];
  }
  return acc;
}
