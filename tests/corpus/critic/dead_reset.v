// critic corpus: taxonomy=dead-reset rule=dead-reset
// A status register that is cleared on reset and then never written
// again — the model forgot the else branch, so the design "works" only
// while held in reset.  Label: `dead-reset`.
module sticky_flag(input wire clk, input wire rst, input wire event_seen,
                   output reg flag);
  always @(posedge clk or posedge rst) begin
    if (rst)
      flag <= 1'b0;
  end
endmodule
