// critic corpus: taxonomy=lint rule=LINT-MULTIDRIVE
// Two continuous assigns fight over the same output — an LLM merge of
// two partial answers.  Elaborates, but the bus contention is a hard
// error on any real tool.  Label: `lint`.
module mux2(input wire sel, input wire a, input wire b, output wire y);
  assign y = sel ? a : b;
  assign y = a & b;
endmodule
