// critic corpus: taxonomy=xprop rule=undriven-read
// A masked adder that reads an enable net nobody ever drives: every
// simulation cycle the mask is X and the sum is poisoned.  Looks fine to
// a quick read (the net is declared); the critic must reject with `xprop`.
module masked_add(input wire [3:0] a, input wire [3:0] b,
                  output wire [3:0] sum);
  wire [3:0] mask;
  assign sum = (a + b) & mask;
endmodule
