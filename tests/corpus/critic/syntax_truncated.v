// critic corpus: taxonomy=syntax rule=parse
// A generation cut off mid-statement by a token limit — the most common
// hard failure in sampled candidates.  Label: `syntax`.
module counter4(input wire clk, input wire rst, output reg [3:0] count);
  always @(posedge clk) begin
    if (rst)
      count <= 4'd0;
    else
      count <= count +
