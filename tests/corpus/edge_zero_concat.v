// fuzz finding: oracle=seed-corpus kind=hand-picked
// campaign seed=0 case=1 top=tb dut=edge_dut
// replay: (hand-seeded edge case, not generated)
// detail: concatenation width boundaries — a single-part concat and a
//   replicate-by-one must be exact identities (no spurious widening), and
//   1-bit slices must reassemble to the original vector
// expect: pass
// synth: edge_dut
module edge_dut(input [3:0] a, output [3:0] y0, output [3:0] y1,
                output [3:0] y2, output [7:0] w);
  assign y0 = {a};
  assign y1 = {1{a}};
  assign y2 = {a[3], a[2], a[1], a[0]};
  assign w = {{2{a[3:3]}}, a[2:0], a[3:1]};
endmodule
// --- testbench ---
module tb();
  reg [3:0] a;
  wire [3:0] y0;
  wire [3:0] y1;
  wire [3:0] y2;
  wire [7:0] w;
  edge_dut u0(.a(a), .y0(y0), .y1(y1), .y2(y2), .w(w));
  initial begin
    a = 4'b1010;
    #1;
    if (y0 == 4'b1010) $display("PASS: single-part concat is identity");
    else $display("FAIL: y0=%b", y0);
    if (y1 == 4'b1010) $display("PASS: replicate-by-one is identity");
    else $display("FAIL: y1=%b", y1);
    if (y2 == 4'b1010) $display("PASS: bit slices reassemble");
    else $display("FAIL: y2=%b", y2);
    if (w == 8'b11010101) $display("PASS: mixed replicate/slice concat");
    else $display("FAIL: w=%b", w);
    $finish;
  end
endmodule
