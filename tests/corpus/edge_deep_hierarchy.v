// fuzz finding: oracle=seed-corpus kind=hand-picked
// campaign seed=0 case=4 top=tb dut=edge_top
// replay: (hand-seeded edge case, not generated)
// detail: five-deep instantiation chain — per-level renaming and port
//   stitching must compose through elaboration and flattening, and the
//   arithmetic must survive all five boundaries
// expect: pass
// synth: edge_top
module edge_l4(input [7:0] a, output [7:0] y);
  assign y = a + 8'h01;
endmodule
module edge_l3(input [7:0] a, output [7:0] y);
  wire [7:0] t;
  edge_l4 u0(.a(a), .y(t));
  assign y = t ^ 8'h10;
endmodule
module edge_l2(input [7:0] a, output [7:0] y);
  wire [7:0] t;
  edge_l3 u0(.a(a), .y(t));
  assign y = t + 8'h02;
endmodule
module edge_l1(input [7:0] a, output [7:0] y);
  wire [7:0] t;
  edge_l2 u0(.a(a), .y(t));
  assign y = ~t;
endmodule
module edge_top(input [7:0] a, output [7:0] y);
  wire [7:0] t;
  edge_l1 u0(.a(a), .y(t));
  assign y = t - 8'h01;
endmodule
// --- testbench ---
module tb();
  reg [7:0] a;
  wire [7:0] y;
  edge_top u0(.a(a), .y(y));
  initial begin
    a = 8'h20;
    #1;
    if (y == 8'hcb) $display("PASS: five-level hierarchy computes");
    else $display("FAIL: y=%h", y);
    a = 8'hff;
    #1;
    if (y == 8'hec) $display("PASS: wraparound through the chain");
    else $display("FAIL: y=%h", y);
    $finish;
  end
endmodule
