// fuzz finding: oracle=seed-corpus kind=hand-picked
// campaign seed=0 case=2 top=tb dut=edge_dut
// replay: (hand-seeded edge case, not generated)
// detail: a combinational always block that writes and then reads its own
//   temporary must settle in one delta cycle — signals written inside the
//   block are excluded from its sensitivity, so it must not re-trigger
//   itself into the runaway-step guard
// expect: pass
// synth: edge_dut
module edge_dut(input [3:0] a, input [3:0] b, output reg [3:0] y);
  reg [3:0] t;
  always @* begin
    t = a & b;
    t = t | (a ^ b);
    y = t;
  end
endmodule
// --- testbench ---
module tb();
  reg [3:0] a;
  reg [3:0] b;
  wire [3:0] y;
  edge_dut u0(.a(a), .b(b), .y(y));
  initial begin
    a = 4'b1100;
    b = 4'b1010;
    #1;
    if (y == 4'b1110) $display("PASS: self-referencing comb block settles");
    else $display("FAIL: y=%b", y);
    a = 4'b0000;
    #1;
    if (y == 4'b1010) $display("PASS: re-evaluates on input change only");
    else $display("FAIL: y=%b", y);
    $finish;
  end
endmodule
