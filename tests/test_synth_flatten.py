"""Tests for hierarchy flattening and hierarchical synthesis."""

import pytest

from repro.bench import get_problem
from repro.hdl import parse
from repro.synth import (SynthesisError, check_against_simulation, flatten,
                         synthesize_source)


HIER = """
module inv(input [3:0] a, output [3:0] y);
  assign y = ~a;
endmodule

module double_inv(input [3:0] a, output [3:0] y);
  wire [3:0] mid;
  inv u0(.a(a), .y(mid));
  inv u1(.a(mid), .y(y));
endmodule
"""


class TestFlatten:
    def test_leaf_module_unchanged(self):
        sf = parse(HIER)
        flat = flatten(sf, "inv")
        assert flat is sf.modules["inv"]

    def test_instances_inlined(self):
        flat = flatten(parse(HIER), "double_inv")
        assert flat.instances == ()
        names = {n.name for n in flat.nets}
        assert "u_u0_a" in names and "u_u1_y" in names

    def test_flattened_design_equivalent(self):
        flat = flatten(parse(HIER), "double_inv")
        synth = synthesize_source(HIER, "double_inv")
        cec = check_against_simulation(synth, HIER, flat, vectors=16)
        assert cec.equivalent

    def test_two_level_hierarchy(self):
        src = HIER + """
module quad_inv(input [3:0] a, output [3:0] y);
  wire [3:0] mid;
  double_inv d0(.a(a), .y(mid));
  double_inv d1(.a(mid), .y(y));
endmodule
"""
        flat = flatten(parse(src), "quad_inv")
        synth = synthesize_source(src, "quad_inv")
        cec = check_against_simulation(synth, src, flat, vectors=16)
        assert cec.equivalent

    def test_parameter_override_through_flatten(self):
        src = """
module addk #(parameter K = 1)(input [7:0] a, output [7:0] y);
  assign y = a + K;
endmodule
module top(input [7:0] a, output [7:0] y);
  addk #(.K(5)) u(.a(a), .y(y));
endmodule
"""
        flat = flatten(parse(src), "top")
        synth = synthesize_source(src, "top")
        cec = check_against_simulation(synth, src, flat, vectors=20)
        assert cec.equivalent

    def test_slice_connected_outputs(self):
        problem = get_problem("c5_crypto_round")
        synth = synthesize_source(problem.reference, "cround")
        flat = flatten(parse(problem.reference), "cround")
        cec = check_against_simulation(synth, problem.reference, flat,
                                       vectors=24)
        assert cec.equivalent

    def test_unknown_module_raises(self):
        with pytest.raises(SynthesisError):
            flatten(parse(HIER), "ghost")

    def test_unknown_instance_module_raises(self):
        src = "module top(input a, output y); ghost u(.a(a), .y(y)); endmodule"
        with pytest.raises(SynthesisError):
            flatten(parse(src), "top")

    def test_partial_driver_gap_detected(self):
        src = """
module top(input [3:0] a, output [7:0] y);
  assign y[3:0] = a;
endmodule
"""
        with pytest.raises(SynthesisError):
            synthesize_source(src, "top")

    def test_agent_synthesizes_hierarchical_design(self):
        from repro.core import AgentConfig, EdaAgent
        agent = EdaAgent(AgentConfig(model="gpt-4o"), seed=4)
        report = agent.run(get_problem("c5_crypto_round"))
        stages = dict((s, ok) for s, ok, _ in report.stage_table())
        if stages.get("verification"):
            assert stages.get("synthesis"), report.summary()
