"""Tests for the chat session abstraction and reporting utilities."""

from repro.bench import get_problem, make_task
from repro.core.report import format_table
from repro.llm import ChatSession, Message, SimulatedLLM
from repro.llm.prompts import PromptStrategy


class TestChatSession:
    def _session(self, model="gpt-4", seed=0):
        return ChatSession(SimulatedLLM(model, seed=seed),
                           system="You are a hardware design assistant.")

    def test_system_message_first(self):
        chat = self._session()
        assert chat.messages[0].role == "system"

    def test_ask_for_design_appends_messages(self):
        chat = self._session()
        task = make_task(get_problem("c1_mux2"))
        generation = chat.ask_for_design(task)
        roles = [m.role for m in chat.messages]
        assert roles == ["system", "user", "assistant"]
        assert generation.text in chat.messages[-1].content

    def test_tool_output_feeds_refinement(self):
        chat = self._session(seed=5)
        task = make_task(get_problem("c2_adder8"))
        first = chat.ask_for_design(task, temperature=1.2)
        chat.add_tool_output("COMPILE ERROR: syntax error")
        second = chat.ask_for_design(task, temperature=1.2)
        assert second.style_seed == first.style_seed  # refined, not fresh

    def test_last_feedback(self):
        chat = self._session()
        assert chat.last_feedback() == ""
        chat.add_tool_output("FAIL: q mismatch")
        assert "FAIL" in chat.last_feedback()

    def test_token_accounting(self):
        chat = self._session()
        before = chat.total_tokens
        chat.add_user("please build an adder")
        assert chat.total_tokens > before

    def test_transcript_renders_roles(self):
        chat = self._session()
        chat.add_user("hello")
        assert "[user] hello" in chat.transcript

    def test_message_token_count(self):
        assert Message("user", "a b c").tokens == 3


class TestFormatTable:
    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text

    def test_column_padding(self):
        text = format_table(["col", "c2"], [["averylongcell", "b"]])
        lines = text.splitlines()
        assert lines[2].startswith("averylongcell")
        header_col2 = lines[0].index("c2")
        assert lines[2][header_col2] == "b"

    def test_non_string_cells(self):
        text = format_table(["n"], [[42], [3.5]])
        assert "42" in text and "3.5" in text


class TestConversationalStrategy:
    def test_conversational_uses_refine_path_only_with_feedback(self):
        chat = ChatSession(SimulatedLLM("gpt-4", seed=1))
        task = make_task(get_problem("c1_and4"))
        g1 = chat.ask_for_design(task, strategy=PromptStrategy.CONVERSATIONAL)
        g2 = chat.ask_for_design(task, strategy=PromptStrategy.CONVERSATIONAL,
                                 sample_index=1)
        # No tool output between asks: both are fresh generations.
        assert g1.style_seed != g2.style_seed or g1.text != g2.text
