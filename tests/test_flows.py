"""Tests for the design-flow frameworks: AutoChip, VRank, structured flow,
Chip-Chat, hierarchical prompting, AutoBench, AssertLLM."""

import pytest

from repro.bench import get_problem
from repro.flows import (AutoChip, AutoChipConfig, ChipChatSession,
                         StructuredFeedbackFlow, assertion_quality,
                         check_design, generate_assertions,
                         generate_testbench, refine_assertions, run_autochip,
                         run_hierarchical, vrank)
from repro.flows import testbench_quality as tb_quality
from repro.llm import SimulatedLLM


class TestAutoChip:
    def test_strong_model_passes_simple_problem(self):
        result = run_autochip(get_problem("c1_mux2"), model="gpt-4o",
                              k=3, depth=2, seed=0)
        assert result.success

    def test_accounting_consistent(self):
        result = run_autochip(get_problem("c2_adder8"), model="chatgpt-3.5",
                              k=2, depth=3, seed=1)
        assert result.generations == result.tool_evaluations
        assert result.generations <= 2 * 3
        assert len(result.rounds) == result.rounds_used
        assert result.total_tokens > 0

    def test_stops_early_on_success(self):
        result = run_autochip(get_problem("c1_half_adder"), model="gpt-4o",
                              k=4, depth=5, seed=0)
        if result.success:
            assert result.rounds_used <= 5

    def test_ranking_selects_best_candidate(self):
        result = run_autochip(get_problem("c3_alu"), model="chatgpt-3.5",
                              k=5, depth=1, seed=3)
        scores = result.rounds[0].scores
        assert scores == sorted(scores, reverse=True)
        assert result.best_score == pytest.approx(max(0.0, scores[0]))

    def test_feedback_recorded_between_rounds(self):
        llm = SimulatedLLM("chatgpt-3.5", seed=13)
        chip = AutoChip(llm, AutoChipConfig(k=1, depth=4, temperature=1.1))
        result = chip.run(get_problem("c4_seqdet"))
        if result.rounds_used > 1:
            assert any(r.feedback_used for r in result.rounds[1:])

    def test_deterministic(self):
        a = run_autochip(get_problem("c3_alu"), model="gpt-4", k=2, depth=2,
                         seed=9)
        b = run_autochip(get_problem("c3_alu"), model="gpt-4", k=2, depth=2,
                         seed=9)
        assert a.best_source == b.best_source


class TestVRank:
    def test_consistency_selection_sane(self):
        result = vrank(get_problem("c2_gray"), "chatgpt-3.5",
                       n_candidates=6, seed=2)
        assert result.n_candidates == 6
        assert result.n_simulated <= 6
        if result.clusters:
            sizes = [c.size for c in result.clusters]
            assert sizes == sorted(sizes, reverse=True)
            assert sum(sizes) == result.n_simulated

    def test_selected_no_worse_than_first_in_aggregate(self):
        wins_sel = 0
        wins_first = 0
        for seed in range(6):
            r = vrank(get_problem("c2_absdiff"), "chatgpt-3.5",
                      n_candidates=6, temperature=1.0, seed=seed)
            wins_sel += r.selected_passed
            wins_first += r.first_passed
        assert wins_sel >= wins_first

    def test_sequential_problem_supported(self):
        result = vrank(get_problem("c2_counter"), "gpt-4", n_candidates=4,
                       seed=1)
        assert result.n_simulated > 0


class TestStructuredFlow:
    def test_flow_runs_and_reports(self):
        flow = StructuredFeedbackFlow(SimulatedLLM("gpt-4", seed=2))
        result = flow.run(get_problem("c2_adder8"), seed=2)
        assert result.tool_iterations >= 0
        assert result.human_interventions <= flow.human_budget
        assert isinstance(result.no_human_needed, bool)

    def test_strong_model_needs_less_human_help(self):
        def total_human(model):
            total = 0
            for seed in range(3):
                flow = StructuredFeedbackFlow(SimulatedLLM(model, seed=seed))
                for pid in ("c2_adder8", "c2_gray"):
                    total += flow.run(get_problem(pid),
                                      seed=seed).human_interventions
            return total

        assert total_human("gpt-4o") <= total_human("dave-gpt2")


class TestChipChat:
    def test_human_guided_session_ships(self):
        session = ChipChatSession(SimulatedLLM("gpt-4", seed=3))
        result = session.run(get_problem("c3_alu"))
        assert result.success
        assert result.model_turns >= 1
        roles = {t.role for t in result.transcript}
        assert {"designer", "model", "tool"} <= roles

    def test_weak_model_needs_more_turns(self):
        strong = ChipChatSession(SimulatedLLM("gpt-4o", seed=4)).run(
            get_problem("c2_decoder"))
        weak = ChipChatSession(SimulatedLLM("dave-gpt2", seed=4)).run(
            get_problem("c2_decoder"))
        if strong.success and weak.success:
            assert weak.human_turns >= strong.human_turns


class TestHierarchical:
    def test_runs_on_complex_problem(self):
        result = run_hierarchical(get_problem("c5_crypto_round"),
                                  model="cl-verilog-34b", seed=2)
        assert result.submodule_calls >= 1
        assert isinstance(result.lift, int)

    def test_hierarchical_reduces_defects_on_complex_problems(self):
        """The mechanism behind the lift: decomposition means each generated
        piece faces a simpler problem, so fewer defects land.  Defect counts
        are far less noisy than pass/fail (many injected faults are benign
        for a given testbench)."""
        from repro.bench import make_task
        from repro.llm import Prompt, PromptStrategy

        hier_faults = direct_faults = 0
        for seed in range(6):
            llm = SimulatedLLM("cl-verilog-34b", seed=seed)
            for pid in ("c4_seqdet", "c5_accumulator_cpu",
                        "c5_crypto_round"):
                problem = get_problem(pid)
                task = make_task(problem)
                for i in range(3):
                    hg = llm.generate(task, Prompt(
                        problem.spec, strategy=PromptStrategy.HIERARCHICAL),
                        0.7, sample_index=i)
                    dg = llm.generate(task, Prompt(
                        problem.spec, strategy=PromptStrategy.DIRECT),
                        0.7, sample_index=i)
                    hier_faults += len(hg.faults)
                    direct_faults += len(dg.faults)
        assert hier_faults < direct_faults


class TestAutoBench:
    def test_generated_testbench_checks_golden(self):
        problem = get_problem("c2_gray")
        llm = SimulatedLLM("gpt-4o", seed=1)
        tb = generate_testbench(problem, llm, seed=1)
        assert tb.n_checks > 0
        verdict = check_design(tb, problem.reference, problem.module_name)
        assert verdict.simulated

    def test_self_correction_reduces_corruption(self):
        problem = get_problem("c2_adder8")
        llm = SimulatedLLM("chatgpt-3.5", seed=7)
        plain_corrupt = 0
        sc_corrupt = 0
        for seed in range(8):
            plain = generate_testbench(problem, llm, seed=seed,
                                       self_correct=False)
            sc = generate_testbench(problem, llm, seed=seed,
                                    self_correct=True)
            plain_corrupt += plain.corrupted_count
            sc_corrupt += sc.corrupted_count
        assert sc_corrupt < plain_corrupt

    def test_capable_model_more_checks(self):
        problem = get_problem("c1_mux2")
        weak = generate_testbench(problem, SimulatedLLM("dave-gpt2", seed=2),
                                  seed=2)
        strong = generate_testbench(problem, SimulatedLLM("gpt-4o", seed=2),
                                    seed=2)
        assert strong.n_checks >= weak.n_checks

    def test_quality_report(self):
        report = tb_quality(get_problem("c2_absdiff"),
                                   SimulatedLLM("gpt-4", seed=5), seed=5)
        assert 0.0 <= report.mutant_kill_rate <= 1.0
        assert report.n_checks > 0

    def test_broken_candidate_fails_tb(self):
        problem = get_problem("c2_gray")
        llm = SimulatedLLM("gpt-4o", seed=1)
        tb = generate_testbench(problem, llm, seed=1)
        broken = problem.reference.replace("b ^ (b >> 1)", "b & (b >> 1)")
        verdict = check_design(tb, broken, problem.module_name)
        assert not verdict.passed


class TestAssertGen:
    def test_assertions_generated_with_reset(self):
        problem = get_problem("c2_counter")
        assertions = generate_assertions(problem,
                                         SimulatedLLM("gpt-4", seed=1),
                                         seed=1)
        kinds = {a.kind for a in assertions}
        assert "reset" in kinds and "point" in kinds

    def test_refinement_drives_validity_to_one(self):
        problem = get_problem("c3_alu")
        llm = SimulatedLLM("chatgpt-3.5", seed=3)
        assertions = generate_assertions(problem, llm, n_assertions=10,
                                         seed=3)
        refined, rounds = refine_assertions(assertions, problem)
        assert rounds >= 1
        from repro.flows.assertgen import _holds
        from repro.flows.autobench import _interface
        _, clk, reset = _interface(problem)
        for assertion in refined:
            assert _holds(assertion, problem.reference, problem.module_name,
                          clk, reset) is True

    def test_quality_report_ranges(self):
        report = assertion_quality(get_problem("c2_comparator"),
                                   SimulatedLLM("gpt-4", seed=2), seed=2)
        assert 0.0 <= report.validity <= 1.0
        assert report.refined <= report.generated
        assert 0.0 <= report.mutant_kill_rate <= 1.0
