"""Tests for the consolidated ``REPRO_*`` settings reader."""

import warnings

import pytest

from repro.config import (ENV_JOBS, Settings, get_settings,
                          reset_warned_values)


@pytest.fixture
def settings():
    reset_warned_values()
    yield get_settings()
    reset_warned_values()


class TestGenericAccessors:
    def test_env_bool_shared_falsy_set(self, monkeypatch):
        for falsy in ("", "0", "false", "No", "OFF"):
            monkeypatch.setenv("REPRO_TRACE", falsy)
            assert Settings.env_bool("REPRO_TRACE", True) is False
        for truthy in ("1", "true", "yes", "anything"):
            monkeypatch.setenv("REPRO_TRACE", truthy)
            assert Settings.env_bool("REPRO_TRACE", False) is True
        monkeypatch.delenv("REPRO_TRACE")
        assert Settings.env_bool("REPRO_TRACE", True) is True
        assert Settings.env_bool("REPRO_TRACE", False) is False

    def test_env_int_bad_value_warns_once(self, monkeypatch, settings):
        monkeypatch.setenv("REPRO_SERVICE_BATCH", "many")
        with pytest.warns(RuntimeWarning, match="not an integer"):
            assert settings.service_batch_size == 8
        with warnings.catch_warnings():
            warnings.simplefilter("error")      # second read stays silent
            assert settings.service_batch_size == 8

    def test_accessors_read_environment_live(self, monkeypatch, settings):
        monkeypatch.setenv("REPRO_SERVICE", "1")
        assert settings.service_enabled is True
        monkeypatch.setenv("REPRO_SERVICE", "off")
        assert settings.service_enabled is False


class TestResolveJobs:
    def test_argument_beats_environment(self, monkeypatch, settings):
        monkeypatch.setenv(ENV_JOBS, "7")
        assert settings.resolve_jobs(2) == 2
        assert settings.resolve_jobs(None) == 7

    def test_auto_uses_cpu_count(self, settings):
        import os
        assert settings.resolve_jobs("auto") == max(1, os.cpu_count() or 1)
        assert settings.resolve_jobs(-1) == max(1, os.cpu_count() or 1)

    def test_bad_value_degrades_to_serial_with_warning(self, monkeypatch,
                                                       settings):
        monkeypatch.setenv(ENV_JOBS, "lots")
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            assert settings.resolve_jobs(None) == 1


class TestServiceKnobs:
    def test_defaults(self, monkeypatch, settings):
        for var in ("REPRO_SERVICE", "REPRO_SERVICE_BATCH",
                    "REPRO_SERVICE_QUEUE", "REPRO_SERVICE_RETRIES"):
            monkeypatch.delenv(var, raising=False)
        assert settings.service_enabled is False
        assert settings.service_batch_size == 8
        assert settings.service_queue_capacity == 256
        assert settings.service_max_retries == 3

    def test_floors(self, monkeypatch, settings):
        monkeypatch.setenv("REPRO_SERVICE_BATCH", "0")
        monkeypatch.setenv("REPRO_SERVICE_QUEUE", "-5")
        monkeypatch.setenv("REPRO_SERVICE_RETRIES", "-1")
        assert settings.service_batch_size == 1
        assert settings.service_queue_capacity == 1
        assert settings.service_max_retries == 0

    def test_broker_config_from_settings(self, monkeypatch, settings):
        from repro.service import BrokerConfig
        monkeypatch.setenv("REPRO_SERVICE_BATCH", "4")
        monkeypatch.setenv("REPRO_SERVICE_QUEUE", "32")
        monkeypatch.setenv("REPRO_SERVICE_RETRIES", "5")
        cfg = BrokerConfig.from_settings()
        assert cfg.max_batch == 4
        assert cfg.queue_capacity == 32
        assert cfg.max_retries == 5

    def test_breaker_and_timeout_knobs_are_wired(self, monkeypatch,
                                                 settings):
        # Regression: from_settings used to silently drop the breaker and
        # timeout knobs, so operators could not tune them at all.
        from repro.service import BrokerConfig
        monkeypatch.setenv("REPRO_SERVICE_BREAKER_THRESHOLD", "9")
        monkeypatch.setenv("REPRO_SERVICE_BREAKER_RESET_S", "1.5")
        monkeypatch.setenv("REPRO_SERVICE_TIMEOUT_S", "7.5")
        monkeypatch.setenv("REPRO_SERVICE_WORKERS", "3")
        cfg = BrokerConfig.from_settings()
        assert cfg.breaker_threshold == 9
        assert cfg.breaker_reset_s == 1.5
        assert cfg.request_timeout_s == 7.5
        assert cfg.max_concurrent == 3

    def test_breaker_and_timeout_defaults(self, monkeypatch, settings):
        for var in ("REPRO_SERVICE_BREAKER_THRESHOLD",
                    "REPRO_SERVICE_BREAKER_RESET_S",
                    "REPRO_SERVICE_TIMEOUT_S", "REPRO_SERVICE_SHARDS",
                    "REPRO_SERVICE_WORKERS", "REPRO_SERVICE_TENANT_SHARE"):
            monkeypatch.delenv(var, raising=False)
        assert settings.service_breaker_threshold == 5
        assert settings.service_breaker_reset_s == 0.25
        assert settings.service_timeout_s == 60.0
        assert settings.service_shards == 1
        assert settings.service_workers is None
        assert settings.service_tenant_share == 1.0

    def test_timeout_zero_disables_deadlines(self, monkeypatch, settings):
        monkeypatch.setenv("REPRO_SERVICE_TIMEOUT_S", "0")
        assert settings.service_timeout_s is None
        monkeypatch.setenv("REPRO_SERVICE_TIMEOUT_S", "-3")
        assert settings.service_timeout_s is None

    def test_env_float_bad_value_warns_once(self, monkeypatch, settings):
        monkeypatch.setenv("REPRO_SERVICE_BREAKER_RESET_S", "soon")
        with pytest.warns(RuntimeWarning, match="not a number"):
            assert settings.service_breaker_reset_s == 0.25
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert settings.service_breaker_reset_s == 0.25

    def test_shards_and_tenant_share_floors(self, monkeypatch, settings):
        monkeypatch.setenv("REPRO_SERVICE_SHARDS", "0")
        monkeypatch.setenv("REPRO_SERVICE_TENANT_SHARE", "7.0")
        assert settings.service_shards == 1
        assert settings.service_tenant_share == 1.0
        monkeypatch.setenv("REPRO_SERVICE_TENANT_SHARE", "0.001")
        assert settings.service_tenant_share == 0.01


class TestSnapshot:
    def test_snapshot_covers_every_knob(self, settings):
        snap = settings.snapshot()
        for key in ("jobs", "hdl_cache", "compile_cache_capacity",
                    "result_cache_capacity", "trace", "trace_file",
                    "service", "service_batch_size",
                    "service_queue_capacity", "service_max_retries",
                    "service_breaker_threshold", "service_breaker_reset_s",
                    "service_timeout_s", "service_shards",
                    "service_workers", "service_tenant_share",
                    "full_eval"):
            assert key in snap
