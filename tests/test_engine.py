"""Unit coverage for the run engine (:mod:`repro.engine`).

The golden-record tests (``test_engine_golden.py``) pin the rebased flows
byte-for-byte; these tests pin the kernel's own contracts — budget
validation and exhaustion, round accounting, stop-hook ordering, batch
submission equivalence, and broker micro-batch coalescing (the tentpole's
reason to exist).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import make_task as _make_task
from repro.bench.problems import get_problem
from repro.engine import (Budget, GenerationBatch, LoopKernel,
                          RefinementEngine, RunRecord, Selection, UNLIMITED,
                          generate_many, rank_by_score)
from repro.llm.model import SimulatedLLM
from repro.obs import get_metrics


def make_task(problem_id: str):
    return _make_task(get_problem(problem_id))


class TestBudget:
    def test_default_is_unlimited(self):
        assert Budget().unlimited
        assert UNLIMITED.unlimited
        assert UNLIMITED.exhausted(RunRecord()) is None

    @pytest.mark.parametrize("kwargs", [
        {"max_tokens": 0}, {"max_generations": -1}, {"max_evals": 0},
        {"max_rounds": -3}, {"deadline_s": 0.0}, {"deadline_s": -0.5},
    ])
    def test_nonpositive_limits_rejected(self, kwargs):
        with pytest.raises(ValueError, match="must be positive"):
            Budget(**kwargs)

    def test_exhaustion_reasons(self):
        record = RunRecord(rounds_used=2, generations=6, tool_evaluations=6,
                           total_tokens=900)
        assert Budget(max_rounds=2).exhausted(record) == "budget:rounds"
        assert Budget(max_tokens=900).exhausted(record) == "budget:tokens"
        assert Budget(max_generations=5).exhausted(record) \
            == "budget:generations"
        assert Budget(max_evals=6).exhausted(record) == "budget:evals"
        assert Budget(deadline_s=1.0).exhausted(record, elapsed_s=1.0) \
            == "budget:deadline"
        assert Budget(max_rounds=3, max_tokens=901, max_evals=7).exhausted(
            record, elapsed_s=0.0) is None


class TestLoopKernel:
    def test_max_rounds_bounds_the_loop(self):
        ran = []
        record = LoopKernel(step=lambda s, sp: ran.append(s.round_no),
                            max_rounds=3, span_name=None).run()
        assert ran == [1, 2, 3]
        assert record.rounds_used == 3
        assert record.stop_reason == "rounds"

    def test_step_stop_reason_wins(self):
        record = LoopKernel(
            step=lambda s, sp: "converged" if s.round_no == 2 else None,
            max_rounds=10, span_name=None).run()
        assert record.rounds_used == 2
        assert record.stop_reason == "converged"

    def test_stop_hook_checked_before_each_round(self):
        ran = []

        def step(state, sp):
            ran.append(state.round_no)
            return None

        record = LoopKernel(step=step,
                            stop=lambda s: "quota" if s.round_no >= 2
                            else None,
                            max_rounds=10, span_name=None).run()
        assert ran == [1, 2]
        assert record.stop_reason == "quota"

    def test_budget_truncates_and_marks_record(self):
        record = RunRecord()

        def step(state, sp):
            record.tool_evaluations += 4
            return None

        before = get_metrics().counter("engine.budget_exhausted").value
        LoopKernel(step=step, record=record, budget=Budget(max_evals=8),
                   max_rounds=10, span_name=None).run()
        # Started rounds always finish: two rounds run (4, then 8 evals),
        # the third is refused before it starts.
        assert record.rounds_used == 2
        assert record.budget_exhausted == "budget:evals"
        assert record.stop_reason == "budget:evals"
        assert get_metrics().counter("engine.budget_exhausted").value \
            == before + 1

    def test_deadline_uses_injected_clock(self):
        now = {"t": 0.0}

        def step(state, sp):
            now["t"] += 10.0
            return None

        record = LoopKernel(step=step, budget=Budget(deadline_s=25.0),
                            max_rounds=100, span_name=None,
                            clock=lambda: now["t"]).run()
        assert record.rounds_used == 3
        assert record.budget_exhausted == "budget:deadline"


class TestRefinementEngine:
    def _engine(self, **kwargs):
        return RefinementEngine(
            candidates=lambda s: ["a", "b"],
            evaluate=lambda s, cands: [0.25, 0.75],
            select=lambda s, cands, outs: rank_by_score(
                cands, outs, lambda o: o),
            span_name=None, **kwargs)

    def test_counts_and_round_logs(self):
        engine = self._engine(max_rounds=2,
                              feedback=lambda s, sel: f"r{s.round_no}")
        record = engine.run()
        assert record.generations == 4
        assert record.tool_evaluations == 4
        assert [log.round_no for log in record.rounds] == [1, 2]
        # The log keeps the feedback each round CONSUMED, not produced.
        assert [log.feedback_used for log in record.rounds] == ["", "r1"]
        assert record.rounds[0].best_score == 0.75

    def test_stop_after_runs_before_feedback(self):
        seen = []
        engine = self._engine(
            max_rounds=5,
            stop_after=lambda s, sel: "passed" if sel.best_score > 0.5
            else None,
            feedback=lambda s, sel: seen.append(s.round_no) or "fb")
        record = engine.run()
        assert record.stop_reason == "passed"
        assert record.rounds_used == 1
        assert seen == []   # feedback hook skipped once stopped


class TestRankByScore:
    def test_stable_tie_break_prefers_submission_order(self):
        sel = rank_by_score(["x", "y", "z"], [1.0, 1.0, 0.5], lambda o: o)
        assert isinstance(sel, Selection)
        assert sel.best_index == 0
        assert sel.best_candidate == "x"
        assert sel.scores == [1.0, 1.0, 0.5]

    def test_best_index_is_original_position(self):
        sel = rank_by_score(["x", "y", "z"], [0.1, 0.9, 0.5], lambda o: o)
        assert sel.best_index == 1
        assert sel.best_outcome == 0.9


class TestGenerationBatch:
    def test_sequential_fallback_matches_direct_calls(self):
        task = make_task("c2_gray")
        direct = SimulatedLLM("gpt-4", seed=7)
        batched = SimulatedLLM("gpt-4", seed=7)
        expected = [direct.generate(task, sample_index=i) for i in range(4)]
        batch = GenerationBatch(batched, concurrency=8)
        for i in range(4):
            batch.generate(task, sample_index=i)
        assert batch.gather() == expected
        assert batched.usage == direct.usage

    def test_gather_clears_for_reuse(self):
        task = make_task("c2_gray")
        batch = GenerationBatch(SimulatedLLM("gpt-4", seed=0), concurrency=1)
        batch.generate(task, sample_index=0)
        assert len(batch) == 1
        first = batch.gather()
        assert len(batch) == 0
        batch.generate(task, sample_index=0)
        assert batch.gather() == first

    def test_generate_many_free_function_matches_direct(self):
        task = make_task("c2_absdiff")
        direct = SimulatedLLM("chatgpt-3.5", seed=3)
        expected = [direct.generate(task, sample_index=i) for i in range(3)]
        got = generate_many(SimulatedLLM("chatgpt-3.5", seed=3), task,
                            sample_indices=range(3))
        assert got == expected


class TestBrokerCoalescing:
    """Satellite 3: concurrent submission must actually fill lane batches."""

    def test_concurrent_generate_many_coalesces_batches(self):
        from repro.service import ServiceClient
        from repro.service.broker import BrokerConfig, ModelBroker

        task = make_task("c2_gray")
        hist = get_metrics().histogram("service.batch_size.gpt-4")
        before_count, before_total = hist.count, hist.total

        cfg = BrokerConfig(batch_window_s=0.05, request_timeout_s=None)
        with ModelBroker(cfg) as broker:
            backend = SimulatedLLM("gpt-4", seed=5)
            client = ServiceClient(backend, broker=broker)
            batch = GenerationBatch(client, concurrency=8)
            for i in range(8):
                batch.generate(task, sample_index=i)
            gens = batch.gather()

        direct = SimulatedLLM("gpt-4", seed=5)
        assert gens == [direct.generate(task, sample_index=i)
                        for i in range(8)]
        new_count = hist.count - before_count
        new_total = hist.total - before_total
        assert new_count >= 1
        # Mean batch size over this run's batches: > 1 means at least one
        # micro-batch coalesced (pre-engine sequential calls always hit 1.0).
        assert new_total / new_count > 1.0

    def test_sequential_concurrency_one_never_batches(self):
        from repro.service import ServiceClient
        from repro.service.broker import BrokerConfig, ModelBroker

        task = make_task("c2_gray")
        hist = get_metrics().histogram("service.batch_size.gpt-4")
        before_count, before_max_total = hist.count, hist.total

        cfg = BrokerConfig(batch_window_s=0.05, request_timeout_s=None)
        with ModelBroker(cfg) as broker:
            client = ServiceClient(SimulatedLLM("gpt-4", seed=6),
                                   broker=broker)
            batch = GenerationBatch(client, concurrency=1)
            for i in range(4):
                batch.generate(task, sample_index=i)
            batch.gather()

        new_count = hist.count - before_count
        new_total = hist.total - before_max_total
        assert new_count == 4
        assert new_total == pytest.approx(4.0)   # every batch had size 1
