"""Tests for the Section VI extension modules: high-level guided debugging,
hardware security, and kernel extraction."""

import pytest

from repro.bench import get_problem
from repro.flows.crosscheck import (crosscheck, generate_highlevel_model,
                                    guided_debug, supports_crosscheck)
from repro.flows.security import (detect_with_cec, detect_with_random_cosim,
                                  detect_with_testbench, detection_sweep,
                                  insert_trojan)
from repro.hls.kernels import (extract_kernels, plan_accelerator,
                               profile_kernels)
from repro.llm import SimulatedLLM


class TestCrossCheck:
    def test_supported_problems(self):
        assert supports_crosscheck(get_problem("c3_alu"))
        assert not supports_crosscheck(get_problem("c2_counter"))

    def test_faithful_model_consistent_with_reference(self):
        problem = get_problem("c3_alu")
        llm = SimulatedLLM("gpt-4o", seed=1)
        model = generate_highlevel_model(problem, llm, seed=1)
        if model.faithful:
            report = crosscheck(problem, problem.reference, model, seed=1)
            assert report is not None and report.consistent, report.feedback()

    def test_models_consistent_across_suite(self):
        llm = SimulatedLLM("gpt-4o", seed=3)
        checked = 0
        for problem_id in ("c1_mux2", "c1_half_adder", "c2_adder8",
                           "c2_absdiff", "c2_gray", "c2_comparator",
                           "c2_decoder", "c3_alu", "c3_priority",
                           "c1_parity", "c1_and4"):
            problem = get_problem(problem_id)
            model = generate_highlevel_model(problem, llm, seed=3)
            if not model.faithful:
                continue
            report = crosscheck(problem, problem.reference, model, seed=3)
            assert report is not None and report.consistent, \
                f"{problem_id}: {report.feedback()}"
            checked += 1
        assert checked >= 8

    def test_divergence_localized_on_broken_rtl(self):
        problem = get_problem("c2_gray")
        llm = SimulatedLLM("gpt-4o", seed=2)
        model = generate_highlevel_model(problem, llm, seed=2)
        broken = problem.reference.replace("b ^ (b >> 1)", "b ^ (b >> 2)")
        report = crosscheck(problem, broken, model, seed=2)
        assert report is not None
        if model.faithful:
            assert report.divergences
            div = report.divergences[0]
            assert "inputs" in div and "expected" in div

    def test_guided_debug_runs(self):
        result = guided_debug(get_problem("c2_absdiff"),
                              SimulatedLLM("gpt-4", seed=5), seed=5)
        assert result.iterations <= 4
        assert result.used_crosscheck

    def test_crosscheck_beats_plain_feedback_in_aggregate(self):
        """Localized expected-vs-actual feedback should help at least as
        much as bare FAIL lines."""
        wins_x = wins_plain = 0
        for seed in range(6):
            for pid in ("c2_gray", "c2_absdiff", "c3_alu"):
                problem = get_problem(pid)
                x = guided_debug(problem,
                                 SimulatedLLM("codellama-34b-instruct",
                                              seed=seed),
                                 use_crosscheck=True, temperature=1.3,
                                 seed=seed)
                plain = guided_debug(problem,
                                     SimulatedLLM("codellama-34b-instruct",
                                                  seed=seed),
                                     use_crosscheck=False, temperature=1.3,
                                     seed=seed)
                wins_x += x.success
                wins_plain += plain.success
        assert wins_x >= wins_plain


class TestSecurity:
    def test_trojan_compiles_and_hides_from_testbench_sometimes(self):
        caught = 0
        total = 0
        for seed in range(4):
            for pid in ("c2_adder8", "c2_absdiff", "c3_alu", "c1_parity"):
                design = insert_trojan(get_problem(pid), seed=seed)
                if design is None:
                    continue
                total += 1
                report = detect_with_testbench(get_problem(pid), design)
                caught += report.detected
        assert total >= 8
        # Directed tests miss rare triggers most of the time.
        assert caught < total

    @pytest.mark.slow
    def test_cec_always_catches(self):
        for seed in range(3):
            for pid in ("c2_adder8", "c3_alu"):
                problem = get_problem(pid)
                design = insert_trojan(problem, seed=seed)
                if design is None:
                    continue
                report = detect_with_cec(problem, design)
                assert report.detected, \
                    f"{pid} seed {seed}: CEC missed {design.trojan.description}"

    def test_random_cosim_improves_with_budget(self):
        problem = get_problem("c2_adder8")
        design = insert_trojan(problem, seed=1)
        assert design is not None
        few = detect_with_random_cosim(problem, design, vectors=4, seed=0)
        many = detect_with_random_cosim(problem, design, vectors=512, seed=0)
        assert many.detected or not few.detected

    @pytest.mark.slow
    def test_detection_hierarchy(self):
        problems = [get_problem(p) for p in ("c2_adder8", "c2_absdiff",
                                             "c3_alu")]
        rates = detection_sweep(problems, seeds=(0, 1, 2), cosim_vectors=64)
        assert rates["exhaustive_cec"] == 1.0
        assert rates["exhaustive_cec"] >= rates["random_cosim"] \
            >= 0.0
        assert rates["random_cosim"] >= rates["testbench"] - 0.34

    def test_sequential_designs_skipped(self):
        assert insert_trojan(get_problem("c2_counter"), seed=0) is None


WORKLOAD = """
int hot_mac(int a[8], int b[8]) {
    int acc = 0;
    for (int i = 0; i < 8; i++) {
        acc += a[i] * b[i];
    }
    return acc;
}
int cold_setup(int x) {
    return x * 2 + 1;
}
int main() {
    int a[8];
    int b[8];
    int s = cold_setup(3);
    for (int i = 0; i < 8; i++) { a[i] = i + s; b[i] = i * 3; }
    int total = 0;
    for (int r = 0; r < 20; r++) {
        int acc = hot_mac(a, b);
        total += acc;
    }
    return total;
}
"""


class TestKernelExtraction:
    def test_profile_identifies_hot_function(self):
        profiles = profile_kernels(WORKLOAD)
        assert profiles[0].function == "hot_mac"
        assert profiles[0].share > 0.3
        assert profiles[0].calls == 20

    def test_plan_accelerator_accounting(self):
        plan = plan_accelerator(WORKLOAD, "hot_mac")
        assert plan.calls == 20
        assert plan.cpu_cycles_per_call > 0
        assert plan.transfer_cycles_per_call >= 17  # two arrays + return
        assert plan.speedup_per_call > 0

    def test_extraction_report(self):
        report = extract_kernels(WORKLOAD, min_share=0.10)
        assert any(p.function == "hot_mac" for p in report.plans)
        assert "hot_mac" in report.summary()

    def test_unexecuted_function_rejected(self):
        src = "int ghost(int a) { return a; }\nint main() { return 1; }"
        with pytest.raises(KeyError):
            plan_accelerator(src, "ghost")

    def test_transfer_cost_can_kill_offload(self):
        # A tiny kernel called with big arrays: transfer dominates.
        src = """
int tiny(int a[32]) {
    return a[0] + 1;
}
int main() {
    int a[32];
    for (int i = 0; i < 32; i++) { a[i] = i; }
    int s = 0;
    for (int r = 0; r < 5; r++) { s += tiny(a); }
    return s;
}
"""
        plan = plan_accelerator(src, "tiny")
        assert not plan.worthwhile
