#!/usr/bin/env python3
"""HLS program repair (Fig. 2): take a C kernel full of HLS-incompatible
constructs, run the four-stage LLM repair loop, and show each stage's work.

Run:  python examples/hls_repair_demo.py
"""

from repro.hls import HlsRepairEngine, check_compatibility, cparse
from repro.llm import SimulatedLLM

BROKEN_KERNEL = """
#include <stdlib.h>
#include <stdio.h>

int moving_sum(int n) {
    int *window = malloc(16 * sizeof(int));
    for (int i = 0; i < 16; i++) {
        window[i] = i * n + 1;
    }
    int acc = 0;
    int i = 0;
    while (i < 16) {
        acc += window[i];
        printf("acc now %d\\n", acc);
        i++;
    }
    free(window);
    return acc;
}
"""


def main() -> None:
    # Stage 0: what would the HLS compiler say today?
    report = check_compatibility(cparse(BROKEN_KERNEL), "moving_sum")
    print(report.error_log())
    print(f"(+{len(report.latent)} latent issue(s) the compiler misses)\n")

    # Stages 1-4: preprocessing -> RAG repair -> equivalence -> PPA.
    engine = HlsRepairEngine(SimulatedLLM("gpt-4", seed=1), use_rag=True,
                             seed=1)
    result = engine.repair(BROKEN_KERNEL, "moving_sum")

    print(result.report(), "\n")
    print("stage log:")
    for entry in result.log:
        print(f"  [{entry.stage:10s}] {entry.detail}")

    print("\n--- repaired HLS-C " + "-" * 39)
    print(result.repaired_source)


if __name__ == "__main__":
    main()
