#!/usr/bin/env python3
"""System-level test generation (Fig. 5): hunt for power-maximizing C
programs on the out-of-order RISC-V core, LLM loop vs genetic programming.

Uses a scaled budget (2 virtual rig-hours each) so it finishes in well under
a minute; raise the hours to reproduce the paper-scale 24 h / 39 h runs.

Run:  python examples/slt_power_hunt.py
"""

from repro.riscv import assemble, compile_program, estimate_power, run_program
from repro.slt import run_gp_slt, run_llm_slt

HOURS_LLM = 2.0
HOURS_GP = 3.25   # same 24:39 budget ratio as the paper


def main() -> None:
    print(f"LLM loop ({HOURS_LLM} rig-hours, SCoT + temperature adaptation)...")
    llm = run_llm_slt(model="codellama-34b-instruct-ft", hours=HOURS_LLM,
                      seed=7)
    print(" ", llm.summary())

    print(f"genetic programming ({HOURS_GP} rig-hours)...")
    gp = run_gp_slt(hours=HOURS_GP, seed=7)
    print(" ", gp.summary())

    delta = gp.best_power_w - llm.best_power_w
    print(f"\nGP - LLM = {delta:+.3f} W "
          f"(paper at full budget: +0.640 W)\n")

    print("best LLM snippet:")
    print(llm.best_source)

    # Where do the watts go? Break down the winning snippet's power.
    stats = run_program(assemble(compile_program(llm.best_source)))
    print("\npower breakdown of the LLM's best snippet:")
    print(" ", estimate_power(stats).summary())
    print(" ", stats.summary())


if __name__ == "__main__":
    main()
