#!/usr/bin/env python3
"""Chip-Chat style conversational co-design (Section IV): an 'experienced
designer' steers a conversational model through a small tapeout of blocks,
with EDA tool output injected into the dialogue.

Run:  python examples/chipchat_session.py
"""

from repro.bench import get_problem
from repro.flows import ChipChatSession
from repro.llm import SimulatedLLM

BLOCKS = ["c5_accumulator_cpu", "c3_alu", "c2_shiftreg"]


def main() -> None:
    llm = SimulatedLLM("gpt-4", seed=11)
    session = ChipChatSession(llm, max_model_turns=8)

    shipped = 0
    for block in BLOCKS:
        problem = get_problem(block)
        print(f"### designing '{problem.name}' ({problem.problem_id})")
        result = session.run(problem)
        for turn in result.transcript:
            text = turn.content.replace("\n", " ")[:96]
            print(f"  [{turn.role:8s}] {text}")
        print(f"  => {result.summary()}\n")
        shipped += result.success

    print(f"tapeout: {shipped}/{len(BLOCKS)} blocks shipped; "
          f"{llm.usage.total_tokens} tokens used across the session")


if __name__ == "__main__":
    main()
