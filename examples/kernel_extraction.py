#!/usr/bin/env python3
"""Intelligent kernel extraction for accelerator generation (Section VI):
profile a C program on the out-of-order core, find the hot kernel, and size
the accelerator opportunity including CPU-accelerator transfer cost.

Run:  python examples/kernel_extraction.py
"""

from repro.hls import extract_kernels, generate_rtl, cparse
from repro.hls.rtlgen import RtlGenError

PROGRAM = """
int fir(int x[16], int h[8]) {
    int acc = 0;
    for (int i = 0; i < 8; i++) {
        acc += x[i] * h[i];
    }
    return acc;
}

int classify(int v) {
    if (v > 100000) { return 2; }
    if (v > 1000) { return 1; }
    return 0;
}

int main() {
    int x[16];
    int h[8];
    for (int i = 0; i < 16; i++) { x[i] = i * 7 + 3; }
    for (int i = 0; i < 8; i++) { h[i] = 8 - i; }
    int hist0 = 0; int hist1 = 0; int hist2 = 0;
    for (int frame = 0; frame < 30; frame++) {
        int energy = fir(x, h);
        int bucket = classify(energy);
        if (bucket == 0) { hist0 += 1; }
        if (bucket == 1) { hist1 += 1; }
        if (bucket == 2) { hist2 += 1; }
        x[frame % 16] = energy & 255;
    }
    return hist0 + hist1 * 10 + hist2 * 100;
}
"""


def main() -> None:
    report = extract_kernels(PROGRAM, min_share=0.05)
    print(report.summary())

    for plan in report.recommended:
        print(f"\ngenerating accelerator RTL for '{plan.function}'...")
        try:
            rtl = generate_rtl(cparse(PROGRAM), plan.function)
            lines = rtl.source.count("\n")
            print(f"  {lines}-line combinational datapath, "
                  f"ports: {rtl.scalar_inputs + list(rtl.array_inputs)}")
        except RtlGenError as exc:
            print(f"  falls back to scheduled accelerator: {exc}")


if __name__ == "__main__":
    main()
