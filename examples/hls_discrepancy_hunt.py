#!/usr/bin/env python3
"""HLSTester (Fig. 3): find behavioural discrepancies between CPU execution
and FPGA deployment of the same C kernel — custom bit widths make the FPGA
accumulator overflow where the CPU does not.

Run:  python examples/hls_discrepancy_hunt.py
"""

from repro.hls import HlsTester, backward_slice, cparse
from repro.llm import SimulatedLLM

KERNEL = """
int dot(int a[8], int b[8]) {
    int acc = 0;
    for (int i = 0; i < 8; i++) {
    #pragma HLS pipeline II=1
        int prod = a[i] * b[i];
        acc += prod;
    }
    return acc;
}
"""

# The HLS tool customized these widths for area: the discrepancy source.
FPGA_WIDTHS = {"acc": 18, "prod": 16}


def main() -> None:
    program = cparse(KERNEL)

    # Stage 2: backward slicing — what actually influences the output?
    slice_result = backward_slice(program, "dot")
    print("key variables:", sorted(slice_result.key_variables))

    # Stages 3-5: instrumented spectra, guided input generation, redundancy
    # filtering, CPU-vs-FPGA comparison.
    tester = HlsTester(program, "dot", width_overrides=FPGA_WIDTHS,
                       pipeline_hazard=True,
                       llm=SimulatedLLM("gpt-4", seed=2), seed=2)
    report = tester.run(budget=150)
    print("campaign:", report.summary())

    if report.discrepancies:
        first = report.discrepancies[0]
        print("\nfirst discrepancy:")
        print("  inputs:", first.inputs)
        print("  CPU result :", first.cpu_value)
        print("  FPGA result:", first.fpga_value, f"({first.note or 'overflow'})")
    print(f"\nsimulations avoided by redundancy filtering: "
          f"{report.sims_skipped} ({report.skip_rate:.0%})")
    print(f"LLM-guided inputs that exposed discrepancies: "
          f"{report.llm_guided_hits}")


if __name__ == "__main__":
    main()
