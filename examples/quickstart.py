#!/usr/bin/env python3
"""Quickstart: generate, verify, and synthesize a Verilog module with a
simulated LLM — the whole LLM4EDA stack in ~40 lines of user code.

Run:  python examples/quickstart.py
"""

from repro.bench import evaluate_candidate, get_problem
from repro.flows import run_autochip
from repro.hdl import parse_module
from repro.synth import estimate_ppa, optimize, synthesize_module

def main() -> None:
    # 1. Pick a benchmark problem (spec + quality testbench, VerilogEval-style).
    problem = get_problem("c3_alu")
    print("spec:", problem.spec, "\n")

    # 2. Let AutoChip (Fig. 4) generate the design: k candidates per round,
    #    tool feedback between rounds.
    result = run_autochip(problem, model="gpt-4o", k=3, depth=3, seed=0)
    print("autochip:", result.summary())
    print("--- generated RTL " + "-" * 40)
    print(result.best_source)
    print("-" * 58)

    # 3. Verify against the problem's golden testbench.
    verdict = evaluate_candidate(problem, result.best_source)
    print("sign-off:", "PASS" if verdict.passed else "FAIL",
          f"({verdict.pass_count}/{verdict.total_checks} checks)")

    # 4. Synthesize to an AIG netlist, optimize, and estimate PPA.
    module = parse_module(result.best_source, problem.module_name)
    netlist = synthesize_module(module)
    netlist.aig = optimize(netlist.aig).aig
    print("netlist:", netlist.aig.stats())
    print("QoR:", estimate_ppa(netlist).summary())


if __name__ == "__main__":
    main()
