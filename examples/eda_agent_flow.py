#!/usr/bin/env python3
"""The unified multi-modal EDA agent (Fig. 6): one object takes a natural-
language spec through specification review, RTL generation with tool
feedback, lint, verification, logic synthesis and closed-loop QoR tuning —
and carries every modality in a single DesignState.

Run:  python examples/eda_agent_flow.py
"""

from repro.bench import get_problem
from repro.core import AgentConfig, EdaAgent, agent_report_text

DESIGNS = ["c2_counter", "c3_priority", "c5_crypto_round"]


def main() -> None:
    agent = EdaAgent(AgentConfig(model="gpt-4o", enable_feedback=True),
                     seed=3)
    for design in DESIGNS:
        problem = get_problem(design)
        report = agent.run(problem)
        print(agent_report_text(report))
        print()

    # The ablation the paper motivates: what does the closed loop buy?
    from repro.core import run_agent_sweep
    problems = [get_problem(d) for d in DESIGNS]
    with_loop = run_agent_sweep(problems, model="gpt-4", seeds=(0, 1))
    without = run_agent_sweep(problems, model="gpt-4", seeds=(0, 1),
                              enable_feedback=False)
    print(f"cross-stage feedback ON : {with_loop.end_to_end_rate:.0%} "
          f"end-to-end")
    print(f"cross-stage feedback OFF: {without.end_to_end_rate:.0%} "
          f"end-to-end")


if __name__ == "__main__":
    main()
